// Command surfsim is a general-purpose surface-reaction simulator: pick
// a model, an engine, a lattice size and a time span — or hand it a
// serialized session spec with -spec — and it prints the coverage time
// series as CSV (stdout) and an optional terminal plot. Engines are
// resolved through the parsurf registry, so every registered engine is
// available by name — run with -method help for the list.
//
// Examples:
//
//	surfsim -model zgb -method rsm -size 100 -t 50
//	surfsim -model ptco -method vssm -size 100 -t 200 -plot
//	surfsim -model ptco -method lpndca -L 100 -strategy random -size 100 -t 200
//	surfsim -model zgb -method ddrsm -workers 4 -size 80 -t 30
//	surfsim -method ziff -y 0.52 -size 128 -t 200
//	surfsim -model zgb -method pndca -workers 4 -replicas 16 -par 4 -t 50
//	surfsim -spec myrun.json -t 50
//	surfsim -spec myrun.json -t 50 -checkpoint run.ckpt
//	surfsim -spec myrun.json -t 100 -resume run.ckpt
//
// -checkpoint writes an engine-exact snapshot after the run; -resume
// restarts from one and continues to -t, producing exactly the tail the
// uninterrupted longer run would have printed.
//
// A spec file is the JSON form of a parsurf.SessionSpec (see the
// "Spec files & surfd" section of the README); for a fixed seed,
// running a spec file is byte-identical to the equivalent flag
// invocation. The run-shaping flags (-t, -dt, -replicas, -par, -plot,
// -svg) still apply with -spec; the spec-owned flags (-model, -method,
// -size, -seed, …) conflict with it and are rejected.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"

	"parsurf"
	"parsurf/internal/modelfile"
	"parsurf/internal/stats"
	"parsurf/internal/timegrid"
	"parsurf/internal/trace"
)

// specOwnedFlags are the flags that describe the session itself; a spec
// file is the single source of truth for those, so combining them with
// -spec is rejected rather than silently preferring one side.
var specOwnedFlags = []string{
	"model", "modelfile", "method", "size", "seed", "L", "strategy", "workers", "block", "y",
}

func main() {
	var (
		modelName = flag.String("model", "zgb", "model: zgb | ptco | diffusion | ising")
		modelFile = flag.String("modelfile", "", "read the model from a definition file instead (see internal/modelfile)")
		method    = flag.String("method", "rsm", "engine name from the registry (use 'help' to list)")
		size      = flag.Int("size", 100, "lattice side (multiples of 10 keep every partition valid)")
		tEnd      = flag.Float64("t", 50, "simulated end time")
		dt        = flag.Float64("dt", 0.25, "sample interval")
		seed      = flag.Uint64("seed", 1, "random seed")
		l         = flag.Int("L", 1, "L-PNDCA: trials per chunk selection")
		strategy  = flag.String("strategy", "random", "L-PNDCA chunk selection: order | randomorder | random | rates")
		workers   = flag.Int("workers", 1, "PNDCA/typepart sweep goroutines / DDRSM strips")
		block     = flag.Int("block", 4, "BCA block side")
		y         = flag.Float64("y", 0.5, "ziff: CO impingement fraction")
		specPath  = flag.String("spec", "", "run a serialized session spec (JSON) instead of the model/engine flags")
		replicas  = flag.Int("replicas", 1, "ensemble replicas (>1 prints the ensemble mean series)")
		par       = flag.Int("par", 4, "ensemble worker goroutines")
		plot      = flag.Bool("plot", false, "print an ASCII plot to stderr")
		svgPath   = flag.String("svg", "", "also write an SVG chart of the coverages to this path")
		ckptPath  = flag.String("checkpoint", "", "write an engine-exact session checkpoint to this path after the run (single session only)")
		resume    = flag.String("resume", "", "resume the session from a checkpoint written by -checkpoint and continue to -t (single session only)")
	)
	flag.Parse()

	if *method == "help" {
		printHelp(os.Stderr)
		os.Exit(2)
	}

	var spec *parsurf.SessionSpec
	var title string
	var err error
	if *specPath != "" {
		if conflict := specFlagConflict(); conflict != "" {
			fmt.Fprintf(os.Stderr, "surfsim: -spec conflicts with -%s (the spec file owns it; drop the flag or edit the spec)\n", conflict)
			os.Exit(1)
		}
		spec, err = loadSpec(*specPath)
		title = *specPath
	} else {
		spec, title, err = specFromFlags(*modelName, *modelFile, *method, *size, *seed,
			*l, *strategy, *workers, *block, *y)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "surfsim:", err)
		os.Exit(1)
	}
	if (*ckptPath != "" || *resume != "") && *replicas != 1 {
		fmt.Fprintln(os.Stderr, "surfsim: -checkpoint/-resume snapshot a single session; drop -replicas")
		os.Exit(1)
	}
	if err := run(spec, title, *tEnd, *dt, *replicas, *par, *plot, *svgPath, *ckptPath, *resume, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "surfsim:", err)
		os.Exit(1)
	}
}

// printHelp lists every name a flag or spec file can reference.
func printHelp(w io.Writer) {
	fmt.Fprintln(w, "registered engines:")
	for _, spec := range parsurf.EngineSpecs() {
		fmt.Fprintf(w, "  %-9s %s\n", spec.Name, spec.Doc)
	}
	fmt.Fprintf(w, "partition builders (spec files): %s\n", strings.Join(parsurf.PartitionBuilders(), ", "))
	fmt.Fprintf(w, "type-split builders (spec files): %s\n", strings.Join(parsurf.TypeSplitBuilders(), ", "))
	fmt.Fprintf(w, "init presets (spec files): %s\n", strings.Join(parsurf.InitPresets(), ", "))
	fmt.Fprintf(w, "model presets: %s\n", strings.Join(parsurf.ModelPresets(), ", "))
}

// specFlagConflict returns the first explicitly-set flag that a spec
// file owns, or "".
func specFlagConflict() string {
	owned := make(map[string]bool, len(specOwnedFlags))
	for _, name := range specOwnedFlags {
		owned[name] = true
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if owned[f.Name] {
			set = append(set, f.Name)
		}
	})
	sort.Strings(set)
	if len(set) == 0 {
		return ""
	}
	return set[0]
}

// runResumed continues a resumed session to tEnd, sampling on the
// t=0-anchored grid the original run used (Session.Run anchors its
// grid at the current clock, which would shift every remaining sample
// by the checkpoint time). Grid points the checkpointed run already
// covered are skipped, so the printed rows are exactly the tail the
// uninterrupted run prints past the checkpoint.
func runResumed(sess *parsurf.Session, tEnd, dt float64, record func(t float64, cfg *parsurf.Config)) error {
	grid, err := timegrid.New(tEnd, dt)
	if err != nil {
		return err
	}
	eng := sess.Engine()
	k0 := 0
	for k0 < grid.Len() && grid.At(k0) <= eng.Time() {
		k0++
	}
	for k := k0; k < grid.Len(); k++ {
		if k == grid.Len()-1 && grid.Tail() && eng.Time() >= tEnd {
			// The clock already covered the off-grid horizon; a tail
			// sample would duplicate the previous observation.
			break
		}
		target := grid.At(k)
		if _, err := sess.Run(context.Background(), parsurf.Until(target)); err != nil {
			return err
		}
		record(eng.Time(), sess.Config())
		if eng.Time() < target {
			// Absorbing state before the sample point: recorded once.
			break
		}
	}
	return nil
}

// writeCheckpoint snapshots the finished session to path via a
// temporary file and rename, so a crash mid-write never leaves a
// half-written checkpoint under the requested name.
func writeCheckpoint(sess *parsurf.Session, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := sess.Checkpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadSpec reads and validates a serialized session spec.
func loadSpec(path string) (*parsurf.SessionSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := parsurf.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// specFromFlags builds the session spec the flag set describes; the
// returned title labels plots.
func specFromFlags(modelName, modelFile, method string, size int, seed uint64,
	l int, strategy string, workers, block int, y float64) (*parsurf.SessionSpec, string, error) {
	engSpec, ok := parsurf.LookupEngine(method)
	if !ok {
		return nil, "", fmt.Errorf("unknown engine %q (registered: %v)", method, parsurf.Engines())
	}

	// Forward each flag to every engine that accepts it; the registry
	// validates the rest. Flag defaults coincide with engine defaults.
	var engOpts []parsurf.EngineOption
	if engSpec.Accepts&parsurf.OptL != 0 {
		engOpts = append(engOpts, parsurf.Trials(l))
	}
	if engSpec.Accepts&parsurf.OptStrategy != 0 {
		engOpts = append(engOpts, parsurf.StrategyName(strategy))
	}
	if engSpec.Accepts&parsurf.OptWorkers != 0 {
		engOpts = append(engOpts, parsurf.Workers(workers))
	}
	if engSpec.Accepts&parsurf.OptBlocks != 0 {
		engOpts = append(engOpts, parsurf.BlockSize(block, block))
	}
	if engSpec.Accepts&parsurf.OptY != 0 {
		engOpts = append(engOpts, parsurf.COFraction(y))
	}

	sessOpts := []parsurf.SessionOption{
		parsurf.WithLattice(size, size),
		parsurf.WithEngine(method, engOpts...),
		parsurf.WithSeed(seed),
	}
	// The model flags are validated even when the engine is model-free,
	// so a typo'd -model/-modelfile never yields a plausible-looking run.
	title := modelName
	switch {
	case modelFile != "":
		f, err := os.Open(modelFile)
		if err != nil {
			return nil, "", err
		}
		m, err := modelfile.Parse(f)
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", modelFile, err)
		}
		title = modelFile
		if !engSpec.ModelFree {
			sessOpts = append(sessOpts, parsurf.WithModel(m))
		}
	case slices.Contains(parsurf.ModelPresets(), modelName):
		if !engSpec.ModelFree {
			sessOpts = append(sessOpts, parsurf.WithModelPreset(modelName, nil))
		}
	default:
		return nil, "", fmt.Errorf("unknown model %q (presets: %v)", modelName, parsurf.ModelPresets())
	}
	if !engSpec.ModelFree && (modelName == "diffusion" || modelName == "ising") && modelFile == "" {
		// These models are trivial from the all-vacant surface; seed a
		// half-filled one. The preset draws from the session's init
		// stream, so -spec files naming the same preset reproduce the
		// run byte for byte, and ensemble replicas (which run on split
		// streams) get distinct initial surfaces.
		sessOpts = append(sessOpts, parsurf.WithInit(parsurf.RandomInit(0.5, 0.5)))
	}

	spec, err := parsurf.NewSpec(sessOpts...)
	if err != nil {
		return nil, "", err
	}
	return spec, fmt.Sprintf("%s / %s", title, method), nil
}

func run(spec *parsurf.SessionSpec, title string, tEnd, dt float64, replicas, par int,
	plot bool, svgPath, ckptPath, resumePath string, stdout, stderr io.Writer) error {
	var names []string
	var series []*stats.Series
	if replicas > 1 {
		// Streaming ensemble: replicas merge into running moments as
		// they finish, so memory stays O(species × grid) however many
		// replicas run; nothing needs the raw members here.
		ens, err := parsurf.RunEnsemble(context.Background(), spec, replicas, par, tEnd, dt)
		if err != nil {
			return err
		}
		names = spec.SpeciesNames()
		series = ens.Mean
	} else {
		var sess *parsurf.Session
		var err error
		if resumePath != "" {
			f, err2 := os.Open(resumePath)
			if err2 != nil {
				return err2
			}
			sess, err = parsurf.ResumeSession(spec, f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", resumePath, err)
			}
		} else if sess, err = spec.Session(); err != nil {
			return err
		}
		names = sess.SpeciesNames()
		numSpecies := sess.NumSpecies()
		series = make([]*stats.Series, numSpecies)
		for i := range series {
			series[i] = &stats.Series{}
		}
		n := float64(sess.Lattice().N())
		record := func(t float64, cfg *parsurf.Config) {
			counts := cfg.CountAll(numSpecies)
			for sp := range series {
				series[sp].Append(t, float64(counts[sp])/n)
			}
		}
		if resumePath != "" {
			if err := runResumed(sess, tEnd, dt, record); err != nil {
				return err
			}
		} else if _, err := sess.Run(context.Background(), parsurf.Until(tEnd),
			parsurf.SampleEvery(dt, parsurf.ObserverFunc(record))); err != nil {
			return err
		}
		if ckptPath != "" {
			if err := writeCheckpoint(sess, ckptPath); err != nil {
				return err
			}
		}
	}

	header := append([]string{"t"}, names...)
	if err := trace.WriteCSV(stdout, header, series...); err != nil {
		return err
	}
	if plot {
		fmt.Fprintf(stderr, "coverages (%v):\n%s", names,
			trace.ASCIIPlot(14, 72, "ox.+*#", series...))
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		l0, l1 := spec.Extents()
		opt := trace.SVGOptions{
			Title:  fmt.Sprintf("%s, %dx%d", title, l0, l1),
			Labels: names,
		}
		if err := trace.WriteSVG(f, opt, series...); err != nil {
			return err
		}
	}
	return nil
}
