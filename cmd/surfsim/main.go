// Command surfsim is a general-purpose surface-reaction simulator: pick
// a model, an algorithm, a lattice size and a time span; it prints the
// coverage time series as CSV (stdout) and an optional terminal plot.
//
// Examples:
//
//	surfsim -model zgb -method rsm -size 100 -t 50
//	surfsim -model ptco -method vssm -size 100 -t 200 -plot
//	surfsim -model ptco -method lpndca -L 100 -strategy random -size 100 -t 200
//	surfsim -model zgb -method ddrsm -workers 4 -size 80 -t 30
package main

import (
	"flag"
	"fmt"
	"os"

	"parsurf"
	"parsurf/internal/modelfile"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "zgb", "model: zgb | ptco | diffusion | ising")
		modelFile = flag.String("modelfile", "", "read the model from a definition file instead (see internal/modelfile)")
		method    = flag.String("method", "rsm", "algorithm: rsm | vssm | frm | ndca | pndca | lpndca | typepart | ddrsm")
		size      = flag.Int("size", 100, "lattice side (multiples of 10 keep every partition valid)")
		tEnd      = flag.Float64("t", 50, "simulated end time")
		dt        = flag.Float64("dt", 0.25, "sample interval")
		seed      = flag.Uint64("seed", 1, "random seed")
		l         = flag.Int("L", 1, "L-PNDCA: trials per chunk selection")
		strategy  = flag.String("strategy", "random", "L-PNDCA chunk selection: order | randomorder | random | rates")
		workers   = flag.Int("workers", 1, "PNDCA sweep goroutines / DDRSM strips")
		plot      = flag.Bool("plot", false, "print an ASCII plot to stderr")
		svgPath   = flag.String("svg", "", "also write an SVG chart of the coverages to this path")
	)
	flag.Parse()

	if err := run(*modelName, *modelFile, *method, *size, *tEnd, *dt, *seed, *l, *strategy, *workers, *plot, *svgPath); err != nil {
		fmt.Fprintln(os.Stderr, "surfsim:", err)
		os.Exit(1)
	}
}

func run(modelName, modelFile, method string, size int, tEnd, dt float64, seed uint64, l int, strategy string, workers int, plot bool, svgPath string) error {
	var m *parsurf.Model
	switch {
	case modelFile != "":
		f, err := os.Open(modelFile)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err = modelfile.Parse(f)
		if err != nil {
			return fmt.Errorf("%s: %w", modelFile, err)
		}
	case modelName == "zgb":
		m = parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	case modelName == "ptco":
		m = parsurf.NewPtCOModel(parsurf.DefaultPtCORates())
	case modelName == "diffusion":
		m = parsurf.NewDiffusionModel(1)
	case modelName == "ising":
		m = parsurf.NewIsingModel(0.4)
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	lat := parsurf.NewSquareLattice(size)
	cm, err := parsurf.Compile(m, lat)
	if err != nil {
		return err
	}
	cfg := parsurf.NewConfig(lat)
	if modelName == "diffusion" || modelName == "ising" {
		cfg.Randomize([]float64{0.5, 0.5}, parsurf.NewRNG(seed^0xabcd).Float64)
	}
	src := parsurf.NewRNG(seed)

	var sim parsurf.Simulator
	switch method {
	case "rsm":
		sim = parsurf.NewRSM(cm, cfg, src)
	case "vssm":
		sim = parsurf.NewVSSM(cm, cfg, src)
	case "frm":
		sim = parsurf.NewFRM(cm, cfg, src)
	case "ndca":
		sim = parsurf.NewNDCA(cm, cfg, src)
	case "pndca":
		part, err := parsurf.VonNeumann5(lat)
		if err != nil {
			return err
		}
		p := parsurf.NewPNDCA(cm, cfg, src, part)
		p.Workers = workers
		sim = p
	case "lpndca":
		part, err := parsurf.VonNeumann5(lat)
		if err != nil {
			return err
		}
		e := parsurf.NewLPNDCA(cm, cfg, src, part, l)
		switch strategy {
		case "order":
			e.Strategy = parsurf.AllInOrder
		case "randomorder":
			e.Strategy = parsurf.AllRandomOrder
		case "random":
			e.Strategy = parsurf.RandomReplacement
		case "rates":
			e.Strategy = parsurf.RateWeighted
		default:
			return fmt.Errorf("unknown strategy %q", strategy)
		}
		sim = e
	case "typepart":
		ts, err := parsurf.SplitByDirection(m, lat)
		if err != nil {
			return err
		}
		sim = parsurf.NewTypePartitioned(cm, cfg, src, ts)
	case "ddrsm":
		d, err := parsurf.NewDDRSM(cm, cfg, src, workers)
		if err != nil {
			return err
		}
		sim = d
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	numSpecies := m.NumSpecies()
	series := make([]*stats.Series, numSpecies)
	for i := range series {
		series[i] = &stats.Series{}
	}
	parsurf.Sample(sim, dt, tEnd, func(t float64) {
		counts := cfg.CountAll(numSpecies)
		n := float64(lat.N())
		for sp := range series {
			series[sp].Append(t, float64(counts[sp])/n)
		}
	})

	names := append([]string{"t"}, m.Species...)
	if err := trace.WriteCSV(os.Stdout, names, series...); err != nil {
		return err
	}
	if plot {
		fmt.Fprintf(os.Stderr, "coverages (%v):\n%s", m.Species,
			trace.ASCIIPlot(14, 72, "ox.+*#", series...))
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		opt := trace.SVGOptions{
			Title:  fmt.Sprintf("%s / %s, %dx%d", modelTitle(modelName, modelFile), method, size, size),
			Labels: m.Species,
		}
		if err := trace.WriteSVG(f, opt, series...); err != nil {
			return err
		}
	}
	return nil
}

func modelTitle(name, file string) string {
	if file != "" {
		return file
	}
	return name
}
