// Command surfsim is a general-purpose surface-reaction simulator: pick
// a model, an engine, a lattice size and a time span; it prints the
// coverage time series as CSV (stdout) and an optional terminal plot.
// Engines are resolved through the parsurf registry, so every
// registered engine is available by name — run with -method help for
// the list.
//
// Examples:
//
//	surfsim -model zgb -method rsm -size 100 -t 50
//	surfsim -model ptco -method vssm -size 100 -t 200 -plot
//	surfsim -model ptco -method lpndca -L 100 -strategy random -size 100 -t 200
//	surfsim -model zgb -method ddrsm -workers 4 -size 80 -t 30
//	surfsim -method ziff -y 0.52 -size 128 -t 200
//	surfsim -model zgb -method pndca -workers 4 -replicas 16 -par 4 -t 50
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"parsurf"
	"parsurf/internal/modelfile"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "zgb", "model: zgb | ptco | diffusion | ising")
		modelFile = flag.String("modelfile", "", "read the model from a definition file instead (see internal/modelfile)")
		method    = flag.String("method", "rsm", "engine name from the registry (use 'help' to list)")
		size      = flag.Int("size", 100, "lattice side (multiples of 10 keep every partition valid)")
		tEnd      = flag.Float64("t", 50, "simulated end time")
		dt        = flag.Float64("dt", 0.25, "sample interval")
		seed      = flag.Uint64("seed", 1, "random seed")
		l         = flag.Int("L", 1, "L-PNDCA: trials per chunk selection")
		strategy  = flag.String("strategy", "random", "L-PNDCA chunk selection: order | randomorder | random | rates")
		workers   = flag.Int("workers", 1, "PNDCA/typepart sweep goroutines / DDRSM strips")
		block     = flag.Int("block", 4, "BCA block side")
		y         = flag.Float64("y", 0.5, "ziff: CO impingement fraction")
		replicas  = flag.Int("replicas", 1, "ensemble replicas (>1 prints the ensemble mean series)")
		par       = flag.Int("par", 4, "ensemble worker goroutines")
		plot      = flag.Bool("plot", false, "print an ASCII plot to stderr")
		svgPath   = flag.String("svg", "", "also write an SVG chart of the coverages to this path")
	)
	flag.Parse()

	if *method == "help" {
		fmt.Fprintln(os.Stderr, "registered engines:")
		for _, spec := range parsurf.EngineSpecs() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", spec.Name, spec.Doc)
		}
		os.Exit(2)
	}
	if err := run(*modelName, *modelFile, *method, *size, *tEnd, *dt, *seed, *l, *strategy,
		*workers, *block, *y, *replicas, *par, *plot, *svgPath); err != nil {
		fmt.Fprintln(os.Stderr, "surfsim:", err)
		os.Exit(1)
	}
}

func run(modelName, modelFile, method string, size int, tEnd, dt float64, seed uint64,
	l int, strategy string, workers, block int, y float64, replicas, par int,
	plot bool, svgPath string) error {
	engSpec, ok := parsurf.LookupEngine(method)
	if !ok {
		return fmt.Errorf("unknown engine %q (registered: %v)", method, parsurf.Engines())
	}

	// Forward each flag to every engine that accepts it; the registry
	// validates the rest. Flag defaults coincide with engine defaults.
	var engOpts []parsurf.EngineOption
	if engSpec.Accepts&parsurf.OptL != 0 {
		engOpts = append(engOpts, parsurf.Trials(l))
	}
	if engSpec.Accepts&parsurf.OptStrategy != 0 {
		engOpts = append(engOpts, parsurf.StrategyName(strategy))
	}
	if engSpec.Accepts&parsurf.OptWorkers != 0 {
		engOpts = append(engOpts, parsurf.Workers(workers))
	}
	if engSpec.Accepts&parsurf.OptBlocks != 0 {
		engOpts = append(engOpts, parsurf.BlockSize(block, block))
	}
	if engSpec.Accepts&parsurf.OptY != 0 {
		engOpts = append(engOpts, parsurf.COFraction(y))
	}

	sessOpts := []parsurf.SessionOption{
		parsurf.WithLattice(size, size),
		parsurf.WithEngine(method, engOpts...),
		parsurf.WithSeed(seed),
	}
	// The model flags are validated even when the engine is model-free,
	// so a typo'd -model/-modelfile never yields a plausible-looking run.
	var m *parsurf.Model
	switch {
	case modelFile != "":
		f, err := os.Open(modelFile)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err = modelfile.Parse(f)
		if err != nil {
			return fmt.Errorf("%s: %w", modelFile, err)
		}
	case modelName == "zgb":
		m = parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	case modelName == "ptco":
		m = parsurf.NewPtCOModel(parsurf.DefaultPtCORates())
	case modelName == "diffusion":
		m = parsurf.NewDiffusionModel(1)
	case modelName == "ising":
		m = parsurf.NewIsingModel(0.4)
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}
	if !engSpec.ModelFree {
		sessOpts = append(sessOpts, parsurf.WithModel(m))
		if modelName == "diffusion" || modelName == "ising" {
			// Single runs keep the historical fixed init stream for
			// bit-identical output; ensemble replicas use the split
			// per-replica stream so their initial surfaces differ.
			useReplicaStream := replicas > 1
			sessOpts = append(sessOpts, parsurf.WithInit(func(cfg *parsurf.Config, src *parsurf.RNG) {
				if useReplicaStream {
					cfg.Randomize([]float64{0.5, 0.5}, src.Float64)
				} else {
					cfg.Randomize([]float64{0.5, 0.5}, parsurf.NewRNG(seed^0xabcd).Float64)
				}
			}))
		}
	}

	spec, err := parsurf.NewSpec(sessOpts...)
	if err != nil {
		return err
	}

	var names []string
	var series []*stats.Series
	if replicas > 1 {
		// Streaming ensemble: replicas merge into running moments as
		// they finish, so memory stays O(species × grid) however many
		// replicas run; nothing needs the raw members here.
		ens, err := parsurf.RunEnsemble(context.Background(), spec, replicas, par, tEnd, dt)
		if err != nil {
			return err
		}
		names = spec.SpeciesNames()
		series = ens.Mean
	} else {
		sess, err := spec.Session()
		if err != nil {
			return err
		}
		names = sess.SpeciesNames()
		numSpecies := sess.NumSpecies()
		series = make([]*stats.Series, numSpecies)
		for i := range series {
			series[i] = &stats.Series{}
		}
		n := float64(sess.Lattice().N())
		obs := parsurf.ObserverFunc(func(t float64, cfg *parsurf.Config) {
			counts := cfg.CountAll(numSpecies)
			for sp := range series {
				series[sp].Append(t, float64(counts[sp])/n)
			}
		})
		if _, err := sess.Run(context.Background(), parsurf.Until(tEnd), parsurf.SampleEvery(dt, obs)); err != nil {
			return err
		}
	}

	header := append([]string{"t"}, names...)
	if err := trace.WriteCSV(os.Stdout, header, series...); err != nil {
		return err
	}
	if plot {
		fmt.Fprintf(os.Stderr, "coverages (%v):\n%s", names,
			trace.ASCIIPlot(14, 72, "ox.+*#", series...))
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		opt := trace.SVGOptions{
			Title:  fmt.Sprintf("%s / %s, %dx%d", modelTitle(modelName, modelFile), method, size, size),
			Labels: names,
		}
		if err := trace.WriteSVG(f, opt, series...); err != nil {
			return err
		}
	}
	return nil
}

func modelTitle(name, file string) string {
	if file != "" {
		return file
	}
	return name
}
