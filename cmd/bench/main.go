// Command bench runs the paper-shaped performance workloads — the ZGB
// CO-oxidation model on 64², 128² and 256² lattices — across every
// registered engine and writes a BENCH_<date>.json trajectory file with
// ns/event, events/sec and allocation counts, plus an ensemble-
// throughput section (replicas/sec, allocations per replica, and the
// fresh-build vs pooled-Reset per-replica setup cost). Committing one
// such file per performance PR keeps the hot-path numbers accountable
// over time.
//
// Usage:
//
//	go run ./cmd/bench            # full workload set, writes BENCH_<date>.json
//	go run ./cmd/bench -quick     # 64² only, reduced budgets (CI smoke)
//	go run ./cmd/bench -o out.json -engines vssm,frm -sizes 128
//	go run ./cmd/bench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The "event" unit is one reaction trial for trial-based engines (one
// MC step = N trials) and one executed reaction for the event-based
// engines (VSSM, FRM), matching how the paper compares the methods.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"parsurf"
)

// eventEngines advance one executed reaction per Step; everything else
// advances one MC step of N trials per Step.
var eventEngines = map[string]bool{"vssm": true, "frm": true}

// Result is one (engine, lattice) measurement, the JSON schema's unit.
type Result struct {
	Engine       string  `json:"engine"`
	Model        string  `json:"model"`
	Lattice      int     `json:"lattice"` // side length of the square lattice
	Unit         string  `json:"unit"`    // "event" or "trial"
	Steps        uint64  `json:"steps"`
	Events       uint64  `json:"events"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_event"`
	BytesPerOp   float64 `json:"bytes_per_event"`
}

// EnsembleResult is one (engine, lattice) ensemble-throughput
// measurement: the cost of running many replicas through the pooled
// RunEnsemble path, and the per-replica setup cost of a fresh session
// build vs a pooled Session.Reset.
type EnsembleResult struct {
	Engine   string  `json:"engine"`
	Model    string  `json:"model"`
	Lattice  int     `json:"lattice"`
	Replicas int     `json:"replicas"`
	Workers  int     `json:"workers"`
	Until    float64 `json:"until"`
	Every    float64 `json:"every"`

	// End-to-end RunEnsemble throughput (build/Reset + run + merge).
	ElapsedNs        int64   `json:"elapsed_ns"`
	ReplicasPerSec   float64 `json:"replicas_per_sec"`
	AllocsPerReplica float64 `json:"allocs_per_replica"`
	BytesPerReplica  float64 `json:"bytes_per_replica"`

	// Per-replica setup cost in isolation: constructing a session from
	// the spec (fresh) vs rewinding a pooled one (reset).
	SetupFreshAllocs float64 `json:"setup_fresh_allocs_per_replica"`
	SetupFreshBytes  float64 `json:"setup_fresh_bytes_per_replica"`
	SetupFreshNs     float64 `json:"setup_fresh_ns_per_replica"`
	SetupResetAllocs float64 `json:"setup_reset_allocs_per_replica"`
	SetupResetBytes  float64 `json:"setup_reset_bytes_per_replica"`
	SetupResetNs     float64 `json:"setup_reset_ns_per_replica"`
	// SetupAllocReduction is fresh/reset allocations (the pooling win).
	SetupAllocReduction float64 `json:"setup_alloc_reduction_factor"`
}

// File is the BENCH_<date>.json top level.
type File struct {
	Date      string           `json:"date"`
	GoVersion string           `json:"go_version"`
	GOARCH    string           `json:"goarch"`
	GOOS      string           `json:"goos"`
	NumCPU    int              `json:"num_cpu"`
	Quick     bool             `json:"quick"`
	Seed      uint64           `json:"seed"`
	Results   []Result         `json:"results"`
	Ensemble  []EnsembleResult `json:"ensemble"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced budgets and 64² only (CI smoke)")
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	enginesFlag := flag.String("engines", "", "comma-separated engine subset (default all registered)")
	sizesFlag := flag.String("sizes", "", "comma-separated lattice sides (default 64,128,256; -quick 64)")
	seed := flag.Uint64("seed", 2003, "RNG seed shared by every workload")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path before exiting")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	sizes := []int{64, 128, 256}
	if *quick {
		sizes = []int{64}
	}
	if *sizesFlag != "" {
		sizes = sizes[:0]
		for _, tok := range strings.Split(*sizesFlag, ",") {
			side, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || side < 8 {
				fatalf("bad -sizes entry %q", tok)
			}
			sizes = append(sizes, side)
		}
	}
	engines := parsurf.Engines()
	if *enginesFlag != "" {
		engines = engines[:0]
		for _, tok := range strings.Split(*enginesFlag, ",") {
			engines = append(engines, strings.TrimSpace(tok))
		}
	}

	// Budgets: enough work to dominate timer noise and scheduling
	// jitter, small enough that the full matrix stays under a couple of
	// minutes.
	eventBudget, stepBudget := uint64(1_000_000), uint64(40)
	if *quick {
		eventBudget, stepBudget = 30_000, 5
	}

	file := File{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		GOOS:      runtime.GOOS,
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Seed:      *seed,
	}
	for _, side := range sizes {
		for _, name := range engines {
			res, err := measure(name, side, *seed, eventBudget, stepBudget)
			if err != nil {
				fatalf("%s @ %d²: %v", name, side, err)
			}
			file.Results = append(file.Results, res)
			fmt.Printf("%-9s %4d²  %9.1f ns/%-5s  %12.0f ev/s  %6.2f allocs/ev\n",
				res.Engine, res.Lattice, res.NsPerEvent, res.Unit,
				res.EventsPerSec, res.AllocsPerOp)
		}
	}

	// Ensemble throughput: the per-replica economics of the pooled
	// replica path, at the smallest configured lattice (the regime where
	// setup cost dominates).
	ensSide := sizes[0]
	for _, s := range sizes {
		if s < ensSide {
			ensSide = s
		}
	}
	ensReplicas, setupReps := 64, 100
	if *quick {
		ensReplicas, setupReps = 16, 25
	}
	for _, name := range engines {
		res, err := measureEnsemble(name, ensSide, *seed, ensReplicas, setupReps)
		if err != nil {
			fatalf("ensemble %s @ %d²: %v", name, ensSide, err)
		}
		file.Ensemble = append(file.Ensemble, res)
		fmt.Printf("%-9s %4d² ensemble  %8.1f replicas/s  %8.1f allocs/replica  setup %8.0f → %4.0f allocs (%.0fx)\n",
			res.Engine, res.Lattice, res.ReplicasPerSec, res.AllocsPerReplica,
			res.SetupFreshAllocs, res.SetupResetAllocs, res.SetupAllocReduction)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + file.Date + ".json"
	}
	blob, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s (%d results, %d ensemble)\n", path, len(file.Results), len(file.Ensemble))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
}

// measure times one (engine, side) workload: construct on the shared
// ZGB model, warm up 10% of the budget so the bookkeeping engines run
// in their steady state, then time the remaining steps.
func measure(name string, side int, seed, eventBudget, stepBudget uint64) (Result, error) {
	lat := parsurf.NewSquareLattice(side)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	eng, err := parsurf.NewEngine(name, cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed))
	if err != nil {
		return Result{}, err
	}

	unit := "trial"
	budget := stepBudget
	perStep := uint64(lat.N())
	if eventEngines[name] {
		unit = "event"
		budget = eventBudget
		perStep = 1
	}
	// Warm up 10% of the budget (at least two steps) so the engines
	// reach their steady state before the measurement window: scratch
	// buffers, deferral lists and enabled sets grow to their working
	// capacity during warmup, and the measured window then reflects the
	// allocation-free steady state the CI smoke job asserts.
	warm := budget / 10
	if warm < 2 {
		warm = 2
	}
	if warm >= budget {
		warm = budget - 1
	}
	for i := uint64(0); i < warm; i++ {
		if !eng.Step() {
			return Result{}, fmt.Errorf("absorbed during warmup after %d steps", i)
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	steps := uint64(0)
	for i := warm; i < budget; i++ {
		if !eng.Step() {
			break
		}
		steps++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if steps == 0 {
		return Result{}, fmt.Errorf("no steps completed")
	}

	events := steps * perStep
	return Result{
		Engine:       name,
		Model:        "zgb",
		Lattice:      side,
		Unit:         unit,
		Steps:        steps,
		Events:       events,
		ElapsedNs:    elapsed.Nanoseconds(),
		NsPerEvent:   float64(elapsed.Nanoseconds()) / float64(events),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(events),
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / float64(events),
	}, nil
}

// measureEnsemble benchmarks the replica economics of one engine at one
// lattice side: the isolated per-replica setup cost (fresh spec.Session
// builds vs pooled Session.Reset rewinds) and the end-to-end pooled
// RunEnsemble throughput.
func measureEnsemble(name string, side int, seed uint64, replicas, setupReps int) (EnsembleResult, error) {
	opts := []parsurf.SessionOption{
		parsurf.WithLattice(side, side),
		parsurf.WithSeed(seed),
		parsurf.WithEngine(name),
	}
	modelName := "zgb"
	if spec, ok := parsurf.LookupEngine(name); ok && !spec.ModelFree {
		// The random init preset keeps the measured Reset path honest:
		// a pooled replica re-draws its initial surface on every Reset,
		// so the zero-allocation assertion covers the init-preset
		// machinery, not just the engine rewind.
		opts = append(opts,
			parsurf.WithModelPreset("zgb", nil),
			parsurf.WithInit(parsurf.RandomInit(0.9, 0.05, 0.05)))
	} else {
		modelName = "ziff"
	}
	spec, err := parsurf.NewSpec(opts...)
	if err != nil {
		return EnsembleResult{}, err
	}

	const until, every = 1.0, 0.25
	workers := runtime.NumCPU()
	res := EnsembleResult{
		Engine: name, Model: modelName, Lattice: side,
		Replicas: replicas, Workers: workers, Until: until, Every: every,
	}

	// Setup, fresh: every replica pays lattice/config/engine
	// construction (the compiled arena is already spec-cached in both
	// paths — that amortisation benefits fresh builds too).
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < setupReps; i++ {
		if _, err := spec.Session(); err != nil {
			return EnsembleResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	res.SetupFreshAllocs = float64(after.Mallocs-before.Mallocs) / float64(setupReps)
	res.SetupFreshBytes = float64(after.TotalAlloc-before.TotalAlloc) / float64(setupReps)
	res.SetupFreshNs = float64(elapsed.Nanoseconds()) / float64(setupReps)

	// Setup, pooled: one session, rewound per replica. Warm over the
	// exact seed sequence the measurement replays: enabled sets and
	// event queues grow to the largest capacity any of these initial
	// surfaces needs, so the measured pass is the true steady state
	// (without the warm pass, a rare Reset whose random surface enables
	// more instances than any before ratchets a capacity and shows up
	// as a fractional allocation).
	sess, err := spec.Session()
	if err != nil {
		return EnsembleResult{}, err
	}
	var src parsurf.RNG
	for i := 0; i < setupReps; i++ {
		src.Seed(seed + uint64(i))
		sess.Reset(&src)
	}
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	for i := 0; i < setupReps; i++ {
		src.Seed(seed + uint64(i))
		sess.Reset(&src)
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	res.SetupResetAllocs = float64(after.Mallocs-before.Mallocs) / float64(setupReps)
	res.SetupResetBytes = float64(after.TotalAlloc-before.TotalAlloc) / float64(setupReps)
	res.SetupResetNs = float64(elapsed.Nanoseconds()) / float64(setupReps)
	if res.SetupResetAllocs > 0 {
		res.SetupAllocReduction = res.SetupFreshAllocs / res.SetupResetAllocs
	} else {
		res.SetupAllocReduction = res.SetupFreshAllocs // reset is allocation-free
	}

	// End-to-end pooled ensemble throughput.
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	if _, err := parsurf.RunEnsemble(context.Background(), spec, replicas, workers, until, every); err != nil {
		return EnsembleResult{}, err
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	res.ElapsedNs = elapsed.Nanoseconds()
	res.ReplicasPerSec = float64(replicas) / elapsed.Seconds()
	res.AllocsPerReplica = float64(after.Mallocs-before.Mallocs) / float64(replicas)
	res.BytesPerReplica = float64(after.TotalAlloc-before.TotalAlloc) / float64(replicas)
	return res, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
