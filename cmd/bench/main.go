// Command bench runs the paper-shaped performance workloads — the ZGB
// CO-oxidation model on 64², 128² and 256² lattices — across every
// registered engine and writes a BENCH_<date>.json trajectory file with
// ns/event, events/sec and allocation counts. Committing one such file
// per performance PR keeps the hot-path numbers accountable over time.
//
// Usage:
//
//	go run ./cmd/bench            # full workload set, writes BENCH_<date>.json
//	go run ./cmd/bench -quick     # 64² only, reduced budgets (CI smoke)
//	go run ./cmd/bench -o out.json -engines vssm,frm -sizes 128
//
// The "event" unit is one reaction trial for trial-based engines (one
// MC step = N trials) and one executed reaction for the event-based
// engines (VSSM, FRM), matching how the paper compares the methods.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"parsurf"
)

// eventEngines advance one executed reaction per Step; everything else
// advances one MC step of N trials per Step.
var eventEngines = map[string]bool{"vssm": true, "frm": true}

// Result is one (engine, lattice) measurement, the JSON schema's unit.
type Result struct {
	Engine       string  `json:"engine"`
	Model        string  `json:"model"`
	Lattice      int     `json:"lattice"` // side length of the square lattice
	Unit         string  `json:"unit"`    // "event" or "trial"
	Steps        uint64  `json:"steps"`
	Events       uint64  `json:"events"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_event"`
	BytesPerOp   float64 `json:"bytes_per_event"`
}

// File is the BENCH_<date>.json top level.
type File struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	GOOS      string   `json:"goos"`
	NumCPU    int      `json:"num_cpu"`
	Quick     bool     `json:"quick"`
	Seed      uint64   `json:"seed"`
	Results   []Result `json:"results"`
}

func main() {
	quick := flag.Bool("quick", false, "reduced budgets and 64² only (CI smoke)")
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	enginesFlag := flag.String("engines", "", "comma-separated engine subset (default all registered)")
	sizesFlag := flag.String("sizes", "", "comma-separated lattice sides (default 64,128,256; -quick 64)")
	seed := flag.Uint64("seed", 2003, "RNG seed shared by every workload")
	flag.Parse()

	sizes := []int{64, 128, 256}
	if *quick {
		sizes = []int{64}
	}
	if *sizesFlag != "" {
		sizes = sizes[:0]
		for _, tok := range strings.Split(*sizesFlag, ",") {
			side, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || side < 8 {
				fatalf("bad -sizes entry %q", tok)
			}
			sizes = append(sizes, side)
		}
	}
	engines := parsurf.Engines()
	if *enginesFlag != "" {
		engines = engines[:0]
		for _, tok := range strings.Split(*enginesFlag, ",") {
			engines = append(engines, strings.TrimSpace(tok))
		}
	}

	// Budgets: enough work to dominate timer noise and scheduling
	// jitter, small enough that the full matrix stays under a couple of
	// minutes.
	eventBudget, stepBudget := uint64(1_000_000), uint64(40)
	if *quick {
		eventBudget, stepBudget = 30_000, 5
	}

	file := File{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		GOOS:      runtime.GOOS,
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Seed:      *seed,
	}
	for _, side := range sizes {
		for _, name := range engines {
			res, err := measure(name, side, *seed, eventBudget, stepBudget)
			if err != nil {
				fatalf("%s @ %d²: %v", name, side, err)
			}
			file.Results = append(file.Results, res)
			fmt.Printf("%-9s %4d²  %9.1f ns/%-5s  %12.0f ev/s  %6.2f allocs/ev\n",
				res.Engine, res.Lattice, res.NsPerEvent, res.Unit,
				res.EventsPerSec, res.AllocsPerOp)
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + file.Date + ".json"
	}
	blob, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(file.Results))
}

// measure times one (engine, side) workload: construct on the shared
// ZGB model, warm up 10% of the budget so the bookkeeping engines run
// in their steady state, then time the remaining steps.
func measure(name string, side int, seed, eventBudget, stepBudget uint64) (Result, error) {
	lat := parsurf.NewSquareLattice(side)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	eng, err := parsurf.NewEngine(name, cm, parsurf.NewConfig(lat), parsurf.NewRNG(seed))
	if err != nil {
		return Result{}, err
	}

	unit := "trial"
	budget := stepBudget
	perStep := uint64(lat.N())
	if eventEngines[name] {
		unit = "event"
		budget = eventBudget
		perStep = 1
	}
	warm := budget / 10
	for i := uint64(0); i < warm; i++ {
		if !eng.Step() {
			return Result{}, fmt.Errorf("absorbed during warmup after %d steps", i)
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	steps := uint64(0)
	for i := warm; i < budget; i++ {
		if !eng.Step() {
			break
		}
		steps++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if steps == 0 {
		return Result{}, fmt.Errorf("no steps completed")
	}

	events := steps * perStep
	return Result{
		Engine:       name,
		Model:        "zgb",
		Lattice:      side,
		Unit:         unit,
		Steps:        steps,
		Events:       events,
		ElapsedNs:    elapsed.Nanoseconds(),
		NsPerEvent:   float64(elapsed.Nanoseconds()) / float64(events),
		EventsPerSec: float64(events) / elapsed.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(events),
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / float64(events),
	}, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
