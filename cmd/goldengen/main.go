// Command goldengen regenerates the golden trace fingerprints embedded
// in api_test.go (goldenTraces): one FNV-64a hash per registered engine
// over the full configuration and clock bits after every step of a
// fixed-seed ZGB run. Run it and paste the output into the table only
// when a PR *intentionally* changes trajectories (and must say so in
// its description) — performance PRs must leave every hash untouched,
// which is what TestGoldenTracesBitIdentical enforces. The run
// parameters and hash live in internal/goldentrace, shared with the
// test, so the two cannot drift apart.
package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/goldentrace"
)

func main() {
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	for _, name := range parsurf.Engines() {
		lat := parsurf.NewSquareLattice(goldentrace.Side)
		cm := parsurf.MustCompile(m, lat)
		eng, err := parsurf.NewEngine(name, cm, parsurf.NewConfig(lat), parsurf.NewRNG(goldentrace.Seed))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%q: 0x%016x,\n", name, goldentrace.Fingerprint(eng, goldentrace.StepsFor(name)))
	}
}
