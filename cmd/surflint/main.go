// Command surflint is the repo's static-analysis suite: five
// analyzers that enforce at compile time the invariants the test
// suite proves at runtime — deterministic randomness sources,
// order-independent map iteration, allocation-free hot paths,
// error-latched persistence, and consistent atomic access.
//
// Run standalone:
//
//	go run ./cmd/surflint ./...
//
// or as a vet tool (what CI does — go vet handles caching and test
// variants):
//
//	go build -o surflint ./cmd/surflint
//	go vet -vettool=$PWD/surflint ./...
//
// The tool is self-contained on the standard library, so it lives in
// the module it checks: the "tools pattern" with nothing to pin —
// the analyzer version is the repo commit itself.
package main

import (
	"os"

	"parsurf/internal/lint"
)

func main() {
	os.Exit(lint.Main("", os.Args[1:], os.Stdout, os.Stderr))
}
