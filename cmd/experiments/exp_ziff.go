package main

import (
	"fmt"
	"runtime"

	"parsurf"
	"parsurf/internal/trace"
	"parsurf/internal/ziff"
)

// runZiff sweeps the classic ZGB phase diagram as an ensemble
// statement — the paper's claims are means over stochastic replicas —
// through the parameter-sweep API: one spec per CO fraction y, a
// replica ensemble per spec, all (y, replica) jobs flattened onto a
// single worker pool. Replica-level measurements (CO2 production at
// the window boundaries, poisoning) stream through a per-replica
// observer, so nothing retains whole replica series. Reports the
// kinetic phase transitions (§1's "experimental data for the
// simulation of Ziff model"; literature: y1 ≈ 0.39, y2 ≈ 0.525).
func runZiff(opt options) error {
	l, equil, measure, replicas := 64, 400, 150, 4
	step := 0.01
	if opt.quick {
		l, equil, measure, replicas = 32, 200, 60, 2
		step = 0.02
	}
	var ys []float64
	for y := 0.32; y <= 0.60+1e-9; y += step {
		ys = append(ys, y)
	}

	specs := make([]*parsurf.SessionSpec, len(ys))
	for i, y := range ys {
		spec, err := parsurf.NewSpec(
			parsurf.WithLattice(l, l),
			parsurf.WithEngine("ziff", parsurf.COFraction(y)),
			parsurf.WithSeed(opt.seed+uint64(i)),
		)
		if err != nil {
			return err
		}
		specs[i] = spec
	}

	// Per-(variant, replica) CO2 ledger sampled on the shared TimeGrid;
	// each slot is written only by its own replica's goroutine.
	ledgers := make([][]ziff.ReplicaLedger, len(ys))
	for v := range ledgers {
		ledgers[v] = make([]ziff.ReplicaLedger, replicas)
	}
	until, every := float64(equil+measure), 1.0
	ensembles, err := parsurf.RunSweep(opt.ctx, specs, replicas, runtime.NumCPU(), until, every,
		parsurf.ObserveReplicas(func(variant, replica int, t float64, sess *parsurf.Session) {
			ledgers[variant][replica].Record(sess.Engine().(*parsurf.ZiffZGB), t, equil)
		}))
	if err != nil {
		return err
	}

	points := make([]ziff.PhasePoint, len(ys))
	for v, ens := range ensembles {
		points[v] = ziff.EnsemblePoint(ys[v], ens.Mean, equil, measure, float64(l*l), ledgers[v])
	}

	rows := make([][]string, 0, len(points))
	for _, p := range points {
		state := "reactive"
		if p.Poisoned {
			if p.CoCO > p.CoO {
				state = "CO-poisoned"
			} else {
				state = "O-poisoned"
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.Y),
			fmt.Sprintf("%.3f", p.CoCO),
			fmt.Sprintf("%.3f", p.CoO),
			fmt.Sprintf("%.4f", p.Rate),
			state,
		})
	}
	fmt.Printf("ensemble of %d replicas per y point:\n", replicas)
	fmt.Print(trace.Table([]string{"y_CO", "θ_CO", "θ_O", "R_CO2", "state"}, rows))
	if y1, y2, ok := ziff.Transitions(points); ok {
		fmt.Printf("estimated transitions: y1 = %.3f (lit. 0.39), y2 = %.3f (lit. 0.525)\n", y1, y2)
	} else {
		fmt.Println("transitions not bracketed")
	}
	return nil
}
