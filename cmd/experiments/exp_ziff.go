package main

import (
	"fmt"

	"parsurf/internal/trace"
	"parsurf/internal/ziff"
)

// runZiff sweeps the classic ZGB phase diagram and reports the kinetic
// phase transitions (§1's "experimental data for the simulation of Ziff
// model"; literature: y1 ≈ 0.39, y2 ≈ 0.525).
func runZiff(opt options) error {
	l, equil, measure := 64, 400, 150
	step := 0.01
	if opt.quick {
		l, equil, measure = 32, 200, 60
		step = 0.02
	}
	var ys []float64
	for y := 0.32; y <= 0.60+1e-9; y += step {
		ys = append(ys, y)
	}
	points := ziff.Sweep(l, ys, equil, measure, opt.seed)

	rows := make([][]string, 0, len(points))
	for _, p := range points {
		state := "reactive"
		if p.Poisoned {
			if p.CoCO > p.CoO {
				state = "CO-poisoned"
			} else {
				state = "O-poisoned"
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.Y),
			fmt.Sprintf("%.3f", p.CoCO),
			fmt.Sprintf("%.3f", p.CoO),
			fmt.Sprintf("%.4f", p.Rate),
			state,
		})
	}
	fmt.Print(trace.Table([]string{"y_CO", "θ_CO", "θ_O", "R_CO2", "state"}, rows))
	if y1, y2, ok := ziff.Transitions(points); ok {
		fmt.Printf("estimated transitions: y1 = %.3f (lit. 0.39), y2 = %.3f (lit. 0.525)\n", y1, y2)
	} else {
		fmt.Println("transitions not bracketed")
	}
	return nil
}
