package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/ca"
	"parsurf/internal/lattice"
	"parsurf/internal/trace"
)

// runTable1 prints the seven reaction types of the CO-oxidation model,
// the content of the paper's Table I.
func runTable1(opt options) error {
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	rows := make([][]string, 0, len(m.Types))
	for i := range m.Types {
		rt := &m.Types[i]
		pattern := ""
		for j, tr := range rt.Triples {
			if j > 0 {
				pattern += ", "
			}
			pattern += fmt.Sprintf("(s+%v: %s→%s)", tr.Off,
				m.Species[tr.Src], m.Species[tr.Tgt])
		}
		rows = append(rows, []string{rt.Name, fmt.Sprintf("%.3g", rt.Rate), pattern})
	}
	fmt.Print(trace.Table([]string{"reaction type", "rate", "transformation"}, rows))
	fmt.Printf("total rate K = %.3f over %d types (Table I has 7)\n", m.K(), len(m.Types))
	fmt.Println("note: Table I's fourth RtCO+O row prints src CO for the second site;")
	fmt.Println("      implemented as O per the text and Fig. 5 (paper typo).")
	return nil
}

// runTable2 prints the reaction-type subsets T0/T1 and verifies the
// checkerboard partitions, the content of Table II.
func runTable2(opt options) error {
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	lat := parsurf.NewSquareLattice(10)
	ts, err := parsurf.SplitByDirection(m, lat)
	if err != nil {
		return err
	}
	if err := ts.Verify(); err != nil {
		return fmt.Errorf("split failed verification: %w", err)
	}
	for j, subset := range ts.Subsets {
		fmt.Printf("T%d (K_T%d = %.3f):", j, j, ts.SubsetRates[j])
		for _, i := range subset {
			fmt.Printf("  %s", m.Types[i].Name)
		}
		fmt.Println()
	}
	fmt.Printf("site partition per subset: %d checkerboard chunks; per-type non-overlap verified\n",
		ts.Partitions[0].NumChunks())
	return nil
}

// runFig3 reproduces the 1-D block CA example: a zero at a block edge
// is confined by a static tiling and released by the shifting one.
func runFig3(opt options) error {
	initial := []lattice.Species{0, 1, 1, 1, 1, 1, 0, 1, 1}
	render := func(states [][]lattice.Species) {
		for step, st := range states {
			fmt.Printf("  step %d: ", step)
			for _, v := range st {
				fmt.Printf("%d ", v)
			}
			fmt.Println()
		}
	}
	fmt.Println("static blocks of 3 (zeros cannot cross edges):")
	states, err := ca.BCA1D(initial, 3, 0, 4)
	if err != nil {
		return err
	}
	render(states)
	fmt.Println("shifting blocks (the Fig. 3 mechanism):")
	states, err = ca.BCA1D(initial, 3, 1, 4)
	if err != nil {
		return err
	}
	render(states)
	return nil
}

// runFig4 prints the 5×5 tile of the von Neumann partition and verifies
// the non-overlap rule on a full lattice.
func runFig4(opt options) error {
	tile := parsurf.NewSquareLattice(5)
	p, err := parsurf.VonNeumann5(tile)
	if err != nil {
		return err
	}
	fmt.Println("chunk labels of the 5x5 tile (colour = (x+3y) mod 5):")
	for y := 0; y < 5; y++ {
		fmt.Print("  ")
		for x := 0; x < 5; x++ {
			fmt.Printf("%d ", p.ChunkOf(tile.Index(x, y)))
		}
		fmt.Println()
	}
	lat := parsurf.NewSquareLattice(100)
	full, err := parsurf.VonNeumann5(lat)
	if err != nil {
		return err
	}
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	if err := parsurf.VerifyNonOverlap(full, m); err != nil {
		return err
	}
	fmt.Println("non-overlap rule verified for the CO-oxidation model on 100x100")
	fmt.Printf("chunks: %d of %d sites each — minimum for von Neumann patterns\n",
		full.NumChunks(), len(full.Chunks[0]))
	return nil
}

// runFig6 prints the checkerboard membership of Fig. 6 and contrasts
// the all-types rule (fails) with the per-type rule (holds).
func runFig6(opt options) error {
	lat := parsurf.NewLattice(6, 4)
	p, err := parsurf.Checkerboard(lat)
	if err != nil {
		return err
	}
	fmt.Println("chunk labels on a width-6 lattice (site ids as in Fig. 6):")
	for y := 0; y < 3; y++ {
		fmt.Print("  ")
		for x := 0; x < 6; x++ {
			fmt.Printf("%d ", p.ChunkOf(lat.Index(x, y)))
		}
		fmt.Println()
	}
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	board, err := parsurf.Checkerboard(parsurf.NewSquareLattice(10))
	if err != nil {
		return err
	}
	if err := parsurf.VerifyNonOverlap(board, m); err != nil {
		fmt.Println("all-types non-overlap: violated (expected — needs 5 chunks)")
	} else {
		return fmt.Errorf("checkerboard unexpectedly satisfies the all-types rule")
	}
	ts, err := parsurf.SplitByDirection(m, parsurf.NewSquareLattice(10))
	if err != nil {
		return err
	}
	if err := ts.Verify(); err != nil {
		return err
	}
	fmt.Println("per-type non-overlap within each T_j: verified (2 chunks suffice)")
	return nil
}
