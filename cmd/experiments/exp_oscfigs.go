package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

// oscSetup holds the shared configuration of the Figs. 8–10 runs: the
// Pt(100) oscillation model on the paper's 100×100 lattice.
type oscSetup struct {
	lat  *parsurf.Lattice
	cm   *parsurf.Compiled
	tEnd float64
	dt   float64
	seed uint64
}

func newOscSetup(opt options) (*oscSetup, error) {
	side := 100
	tEnd := 200.0
	if opt.quick {
		side = 50
		tEnd = 80
	}
	lat := parsurf.NewSquareLattice(side)
	m := parsurf.NewPtCOModel(parsurf.DefaultPtCORates())
	cm, err := parsurf.Compile(m, lat)
	if err != nil {
		return nil, err
	}
	return &oscSetup{lat: lat, cm: cm, tEnd: tEnd, dt: 0.25, seed: opt.seed}, nil
}

// engine builds a named engine over the shared compiled model, seeded
// identically for every engine so the limit cases compare bit for bit.
func (s *oscSetup) engine(name string, cfg *parsurf.Config, opts ...parsurf.EngineOption) parsurf.Engine {
	eng, err := parsurf.NewEngine(name, s.cm, cfg, parsurf.NewRNG(s.seed), opts...)
	if err != nil {
		panic(err) // static engine names and options; cannot fail at run time
	}
	return eng
}

// coSeries runs the simulator to tEnd sampling the CO coverage.
func (s *oscSetup) coSeries(sim parsurf.Simulator, cfg *parsurf.Config) *stats.Series {
	out := &stats.Series{}
	parsurf.Sample(sim, s.dt, s.tEnd, func(t float64) {
		co, _, _ := parsurf.PtCoverages(cfg)
		out.Append(t, co)
	})
	return out
}

func (s *oscSetup) report(name string, co *stats.Series, ref *stats.Series) {
	lo := s.tEnd / 4
	line := fmt.Sprintf("  %-28s", name)
	if osc, ok := stats.DetectOscillation(co.Window(lo, s.tEnd), 800, 0.25); ok {
		line += fmt.Sprintf("period %5.1f  amp %.3f  strength %.2f", osc.Period, osc.Amplitude, osc.Strength)
	} else {
		line += "no sustained oscillation"
	}
	if ref != nil {
		line += fmt.Sprintf("  RMSD vs RSM %.3f", stats.RMSD(ref, co, lo, s.tEnd, 400))
	}
	fmt.Println(line)
}

// runFig8 verifies the exact limit cases of Fig. 8: L-PNDCA with m=1
// (one chunk, L=N) and with m=N (singleton chunks, L=1) reproduce the
// RSM trajectory bit for bit.
func runFig8(opt options) error {
	s, err := newOscSetup(opt)
	if err != nil {
		return err
	}
	n := s.lat.N()

	cfgR := parsurf.NewConfig(s.lat)
	coR := s.coSeries(s.engine("rsm", cfgR), cfgR)

	cfg1 := parsurf.NewConfig(s.lat)
	e1 := s.engine("lpndca", cfg1,
		parsurf.UsePartition(parsurf.SingleChunk(s.lat)), parsurf.Trials(n))
	co1 := s.coSeries(e1, cfg1)

	cfgN := parsurf.NewConfig(s.lat)
	eN := s.engine("lpndca", cfgN,
		parsurf.UsePartition(parsurf.Singletons(s.lat)), parsurf.Trials(1))
	coN := s.coSeries(eN, cfgN)

	fmt.Printf("Pt(100) %dx%d to t=%.0f, identical seeds:\n", s.lat.L0, s.lat.L1, s.tEnd)
	fmt.Printf("  m=1, L=N  final state identical to RSM: %v\n", cfg1.Equal(cfgR))
	fmt.Printf("  m=N, L=1  final state identical to RSM: %v\n", cfgN.Equal(cfgR))
	s.report("RSM", coR, nil)
	s.report("L-PNDCA m=1,L=N", co1, coR)
	s.report("L-PNDCA m=N,L=1", coN, coR)
	fmt.Println("CO coverage (RSM o, m=1 x — curves coincide):")
	fmt.Print(trace.ASCIIPlot(14, 72, "ox", coR, co1))
	return nil
}

// runFig9 compares five-chunk L-PNDCA with L=1 and L=100 against RSM:
// L=1 tracks the DMC kinetics, large L introduces the bias of §6.
func runFig9(opt options) error {
	s, err := newOscSetup(opt)
	if err != nil {
		return err
	}
	part, err := parsurf.VonNeumann5(s.lat)
	if err != nil {
		return err
	}

	cfgR := parsurf.NewConfig(s.lat)
	coR := s.coSeries(s.engine("rsm", cfgR), cfgR)

	series := map[int]*stats.Series{}
	for _, l := range []int{1, 100} {
		cfg := parsurf.NewConfig(s.lat)
		e := s.engine("lpndca", cfg, parsurf.UsePartition(part),
			parsurf.Trials(l), parsurf.Strategy(parsurf.RandomReplacement))
		series[l] = s.coSeries(e, cfg)
	}

	fmt.Printf("Pt(100) %dx%d, five chunks, chunk selection with replacement:\n", s.lat.L0, s.lat.L1)
	s.report("RSM", coR, nil)
	s.report("L-PNDCA L=1", series[1], coR)
	s.report("L-PNDCA L=100", series[100], coR)
	fmt.Println("a) RSM (o) vs L=1 (x):")
	fmt.Print(trace.ASCIIPlot(12, 72, "ox", coR, series[1]))
	fmt.Println("b) RSM (o) vs L=100 (x):")
	fmt.Print(trace.ASCIIPlot(12, 72, "ox", coR, series[100]))
	return nil
}

// runFig10 shows that sweeping all chunks once per step in random order
// preserves the oscillations even at the maximal L = N/m.
func runFig10(opt options) error {
	s, err := newOscSetup(opt)
	if err != nil {
		return err
	}
	part, err := parsurf.VonNeumann5(s.lat)
	if err != nil {
		return err
	}
	l := s.lat.N() / part.NumChunks()

	cfgR := parsurf.NewConfig(s.lat)
	coR := s.coSeries(s.engine("rsm", cfgR), cfgR)

	cfgA := parsurf.NewConfig(s.lat)
	eA := s.engine("lpndca", cfgA, parsurf.UsePartition(part),
		parsurf.Trials(l), parsurf.Strategy(parsurf.AllRandomOrder))
	coA := s.coSeries(eA, cfgA)

	// Contrast: the same L with replacement selection (the failing mode
	// of Fig. 9 pushed further).
	cfgB := parsurf.NewConfig(s.lat)
	eB := s.engine("lpndca", cfgB, parsurf.UsePartition(part),
		parsurf.Trials(l), parsurf.Strategy(parsurf.RandomReplacement))
	coB := s.coSeries(eB, cfgB)

	fmt.Printf("Pt(100) %dx%d, five chunks, L = N/m = %d:\n", s.lat.L0, s.lat.L1, l)
	s.report("RSM", coR, nil)
	s.report("random order, once/step", coA, coR)
	s.report("with replacement (contrast)", coB, coR)
	fmt.Println("RSM (o) vs random-order L-PNDCA (x):")
	fmt.Print(trace.ASCIIPlot(12, 72, "ox", coR, coA))
	return nil
}
