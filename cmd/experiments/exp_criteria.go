package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

// runCriteria checks the two Segers correctness criteria of §6 for each
// exact DMC engine: exponential waiting times (Kolmogorov–Smirnov test)
// and rate-ratio type selection (chi-square test).
func runCriteria(opt options) error {
	reps := 20000
	if opt.quick {
		reps = 4000
	}

	// Criterion 1: on a single-site system with one reaction of rate k,
	// the time to the reaction is Exp(k).
	lat := lattice.New(1, 1)
	m1 := &model.Model{
		Species: []string{"*", "A"},
		Types: []model.ReactionType{{
			Name: "ads", Rate: 2.5,
			Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}},
		}},
	}
	cm1, err := model.Compile(m1, lat)
	if err != nil {
		return err
	}
	src := rng.New(opt.seed)
	waits := make([]float64, reps)
	for i := range waits {
		cfg := lattice.NewConfig(lat)
		eng, err := parsurf.NewEngine("rsm", cm1, cfg, src)
		if err != nil {
			return err
		}
		r := eng.(*parsurf.RSM) // concrete engine for single-trial stepping
		for !r.Trial() {
		}
		waits[i] = r.Time()
	}
	d, p := stats.KSExponential(waits, 2.5)
	fmt.Printf("criterion 1 (waiting time ~ Exp(k)): RSM, %d replicates\n", reps)
	fmt.Printf("  KS statistic %.4f, p-value %.3f  =>  %s\n", d, p, verdict(p > 0.01))

	// Criterion 2: with competing reactions of rates 1 and 3, the next
	// type follows k_i/K for every engine.
	m2 := &model.Model{
		Species: []string{"*", "A", "B"},
		Types: []model.ReactionType{
			{Name: "adsA", Rate: 1, Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 1}}},
			{Name: "adsB", Rate: 3, Triples: []model.Triple{{Off: lattice.Vec{}, Src: 0, Tgt: 2}}},
		},
	}
	cm2, err := model.Compile(m2, lat)
	if err != nil {
		return err
	}
	// The exact DMC engines, by registry name — no per-engine
	// constructors needed.
	engines := []string{"rsm", "vssm", "frm"}
	fmt.Printf("criterion 2 (type ratio k_i/K = 0.25/0.75): %d replicates per engine\n", reps)
	rows := make([][]string, 0, len(engines))
	for _, name := range engines {
		src := rng.New(opt.seed + 7)
		counts := []int{0, 0}
		for i := 0; i < reps; i++ {
			cfg := lattice.NewConfig(lat)
			sim, err := parsurf.NewEngine(name, cm2, cfg, src)
			if err != nil {
				return err
			}
			for cfg.Get(0) == 0 {
				if !sim.Step() {
					break
				}
			}
			counts[int(cfg.Get(0))-1]++
		}
		chi2, dof, err := stats.ChiSquare(counts, []float64{0.25, 0.75})
		if err != nil {
			return err
		}
		// chi-square critical value at 1 dof, alpha 0.01: 6.63.
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.4f", float64(counts[0])/float64(reps)),
			fmt.Sprintf("%.4f", float64(counts[1])/float64(reps)),
			fmt.Sprintf("%.2f (dof %d)", chi2, dof),
			verdict(chi2 < 6.63),
		})
	}
	fmt.Print(trace.Table([]string{"engine", "P(A)", "P(B)", "chi2", "verdict"}, rows))
	return nil
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
