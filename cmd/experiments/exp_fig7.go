package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/trace"
)

// runFig7 regenerates the speedup surface T(1,N)/T(p,N) of Fig. 7 on
// the simulated parallel machine (see DESIGN.md §5 substitution 1),
// validates the real goroutine executor's bit-identity, and contrasts
// the Segers-style domain decomposition overhead.
func runFig7(opt options) error {
	mm := parsurf.DefaultMachine()
	sides := []int{200, 300, 400, 500, 600, 700, 800, 900, 1000}
	workers := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	if opt.quick {
		sides = []int{200, 600, 1000}
		workers = []int{2, 6, 10}
	}
	surface, err := mm.SpeedupSurface(sides, workers)
	if err != nil {
		return err
	}
	header := []string{"N \\ p"}
	for _, p := range workers {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	rows := make([][]string, len(sides))
	for si, side := range sides {
		row := []string{fmt.Sprintf("%d", side)}
		for pi := range workers {
			row = append(row, fmt.Sprintf("%.2f", surface[si][pi]))
		}
		rows[si] = row
	}
	fmt.Println("modeled PNDCA speedup (machine constants: 1 µs/trial, 3 ms barrier):")
	fmt.Print(trace.Table(header, rows))

	// Fidelity: the goroutine-parallel sweep is bit-identical to the
	// sequential one, so the modeled concurrency reflects a real
	// execution.
	side := 50
	if !opt.quick {
		side = 100
	}
	m := parsurf.NewPtCOModel(parsurf.DefaultPtCORates())
	run := func(w int) (*parsurf.Config, error) {
		sess, err := parsurf.NewSession(
			parsurf.WithModel(m),
			parsurf.WithLattice(side, side),
			parsurf.WithEngine("pndca", parsurf.Workers(w)),
			parsurf.WithSeed(opt.seed),
		)
		if err != nil {
			return nil, err
		}
		if _, err := sess.Run(opt.ctx, parsurf.ForSteps(20)); err != nil {
			return nil, err
		}
		return sess.Config(), nil
	}
	seq, err := run(1)
	if err != nil {
		return err
	}
	par, err := run(8)
	if err != nil {
		return err
	}
	fmt.Printf("goroutine check (%dx%d Pt(100), 20 steps): 8 workers == sequential: %v\n",
		side, side, seq.Equal(par))

	// Segers baseline: measure the boundary communication volume of the
	// domain decomposition and model its step time next to PNDCA's.
	zm := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	zlat := parsurf.NewSquareLattice(100)
	zcm, err := parsurf.Compile(zm, zlat)
	if err != nil {
		return err
	}
	fmt.Println("\ndomain-decomposition RSM (Segers) vs PNDCA, modeled step time at 100x100:")
	zpart, err := parsurf.VonNeumann5(zlat)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, p := range []int{2, 4, 8} {
		cfg := parsurf.NewConfig(zlat)
		eng, err := parsurf.NewEngine("ddrsm", zcm, cfg, parsurf.NewRNG(opt.seed), parsurf.Workers(p))
		if err != nil {
			return err
		}
		d := eng.(*parsurf.DDRSM)
		steps := 20
		for i := 0; i < steps; i++ {
			d.Step()
		}
		interior := (d.Trials() - d.Deferred()) / uint64(steps)
		boundary := d.Deferred() / uint64(steps)
		tDD := mm.DDRSMStepTime(interior, boundary, p)
		tPN := mm.PNDCAStepTime(zpart, p)
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", boundary),
			fmt.Sprintf("%.2f ms", tDD*1e3),
			fmt.Sprintf("%.2f ms", tPN*1e3),
		})
	}
	fmt.Print(trace.Table([]string{"p", "boundary trials/step", "T_DDRSM", "T_PNDCA"}, rows))
	return nil
}
