// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Usage:
//
//	experiments [-quick] [-seed N] <experiment>
//
// where <experiment> is one of:
//
//	table1   reaction types of the CO-oxidation model (Table I)
//	table2   reaction-type subsets T0/T1 (Table II)
//	fig3     1-D block CA with shifting boundaries (Fig. 3)
//	fig4     the five-chunk von Neumann partition (Fig. 4)
//	fig6     the two-chunk checkerboard for Ω×T (Fig. 6)
//	fig7     PNDCA speedup surface on the simulated machine (Fig. 7)
//	fig8     RSM ≡ L-PNDCA at the limit parameters (Fig. 8)
//	fig9     five chunks, L=1 vs L=100 (Fig. 9)
//	fig10    random chunk order once per step, L=N/m (Fig. 10)
//	ziff     ZGB phase diagram (§1 "experimental data for Ziff model")
//	all      run everything above in order
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
)

type options struct {
	quick bool
	seed  uint64
	ctx   context.Context
}

var experiments = []struct {
	name string
	desc string
	run  func(opt options) error
}{
	{"table1", "Table I: ZGB reaction types", runTable1},
	{"table2", "Table II: reaction-type subsets", runTable2},
	{"fig3", "Fig. 3: 1-D BCA with shifting blocks", runFig3},
	{"fig4", "Fig. 4: five-chunk partition", runFig4},
	{"fig6", "Fig. 6: checkerboard for Ω×T", runFig6},
	{"fig7", "Fig. 7: PNDCA speedup surface", runFig7},
	{"fig8", "Fig. 8: L-PNDCA limits match RSM", runFig8},
	{"fig9", "Fig. 9: L=1 vs L=100 accuracy", runFig9},
	{"fig10", "Fig. 10: random order preserves oscillations", runFig10},
	{"ziff", "ZGB phase diagram", runZiff},
	{"criteria", "Segers correctness criteria (§6)", runCriteria},
}

func main() {
	quick := flag.Bool("quick", false, "reduced sizes and spans (fast smoke run)")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()
	opt := options{quick: *quick, seed: *seed, ctx: context.Background()}

	name := flag.Arg(0)
	if name == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-seed N] <experiment>")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		fmt.Fprintln(os.Stderr, "  all      run everything")
		os.Exit(2)
	}

	run := func(e struct {
		name string
		desc string
		run  func(opt options) error
	}) {
		fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
		if err := e.run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if name == "all" {
		for _, e := range experiments {
			run(e)
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
	os.Exit(2)
}
