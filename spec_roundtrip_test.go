package parsurf_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"parsurf"
	"parsurf/internal/goldentrace"
)

// representativeSpec builds, for each registered engine, a spec that
// exercises the options the engine accepts — including named partition
// and type-split builders and an init preset — so the round-trip test
// covers every serializable field, driven by the registry itself.
func representativeSpec(t *testing.T, name string) *parsurf.SessionSpec {
	t.Helper()
	engSpec, ok := parsurf.LookupEngine(name)
	if !ok {
		t.Fatalf("engine %q not registered", name)
	}
	var engOpts []parsurf.EngineOption
	if engSpec.Accepts&parsurf.OptL != 0 {
		engOpts = append(engOpts, parsurf.Trials(7))
	}
	if engSpec.Accepts&parsurf.OptStrategy != 0 {
		engOpts = append(engOpts, parsurf.StrategyName("rates"))
	}
	if engSpec.Accepts&parsurf.OptPartition != 0 {
		engOpts = append(engOpts, parsurf.PartitionNamed("vonneumann5"))
	}
	if engSpec.Accepts&parsurf.OptTypeSplit != 0 {
		engOpts = append(engOpts, parsurf.TypeSplitNamed("bydirection"))
	}
	if engSpec.Accepts&parsurf.OptWorkers != 0 {
		engOpts = append(engOpts, parsurf.Workers(2))
	}
	if engSpec.Accepts&parsurf.OptY != 0 {
		engOpts = append(engOpts, parsurf.COFraction(0.51))
	}
	if engSpec.Accepts&parsurf.OptBlocks != 0 {
		engOpts = append(engOpts, parsurf.BlockSize(4, 4))
	}
	opts := []parsurf.SessionOption{
		parsurf.WithLattice(goldentrace.Side, goldentrace.Side),
		parsurf.WithEngine(name, engOpts...),
		parsurf.WithSeed(goldentrace.Seed),
	}
	if !engSpec.ModelFree {
		opts = append(opts,
			parsurf.WithModelPreset("zgb", map[string]float64{"kCO": 0.6}),
			parsurf.WithInit(parsurf.RandomInit(0.8, 0.1, 0.1)),
		)
	}
	spec, err := parsurf.NewSpec(opts...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return spec
}

// fingerprintSpec runs a session built from the spec for n steps and
// hashes (configuration, clock) after every step.
func fingerprintSpec(t *testing.T, spec *parsurf.SessionSpec, steps int) uint64 {
	t.Helper()
	sess, err := spec.Session()
	if err != nil {
		t.Fatal(err)
	}
	return goldentrace.Fingerprint(sess.Engine(), steps)
}

// The registry-driven round-trip property: for every registered
// engine, a representative spec survives Marshal → Unmarshal exactly —
// the decoded spec reproduces the original's 500-step trajectory bit
// for bit (configurations AND clock), and a second marshal is
// byte-identical to the first (the serialization is a fixed point).
func TestSpecJSONRoundTripAllEngines(t *testing.T) {
	const steps = 500
	for _, name := range parsurf.Engines() {
		spec := representativeSpec(t, name)
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := parsurf.ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: unmarshal %s: %v", name, data, err)
		}
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("%s: serialization not a fixed point:\n  %s\n  %s", name, data, data2)
		}
		want := fingerprintSpec(t, spec, steps)
		got := fingerprintSpec(t, back, steps)
		if got != want {
			t.Errorf("%s: decoded spec trajectory fingerprint 0x%016x, want 0x%016x — round trip not exact",
				name, got, want)
		}
	}
}

// A model set via WithModel (no preset) serializes as inline modelfile
// text and still round-trips exactly.
func TestSpecInlineModelRoundTrip(t *testing.T) {
	spec, err := parsurf.NewSpec(
		parsurf.WithModel(parsurf.NewPtCOModel(parsurf.DefaultPtCORates())),
		parsurf.WithLattice(20, 20),
		parsurf.WithEngine("rsm"),
		parsurf.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"text"`) {
		t.Fatalf("inline model did not serialize as text: %s", data)
	}
	back, err := parsurf.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprintSpec(t, back, 200), fingerprintSpec(t, spec, 200); got != want {
		t.Fatalf("inline-model round trip not exact: 0x%016x vs 0x%016x", got, want)
	}
}

// Specs carrying raw Go pointers refuse to serialize, with a hint
// toward the named builders.
func TestSpecRawPartitionNotSerializable(t *testing.T) {
	lat := parsurf.NewSquareLattice(20)
	part, err := parsurf.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := parsurf.NewSpec(
		parsurf.WithModelPreset("zgb", nil),
		parsurf.WithLattice(20, 20),
		parsurf.WithEngine("pndca", parsurf.UsePartition(part)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(spec); err == nil || !strings.Contains(err.Error(), "PartitionNamed") {
		t.Fatalf("marshal of raw-partition spec: %v, want a PartitionNamed hint", err)
	}
}

// Decoding rejects unknown names with registry-aware messages.
func TestSpecDecodeErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantSubstr string
	}{
		{"unknown engine", `{"engine": {"name": "nope"}}`, "registered:"},
		{"unknown field", `{"engine": {"name": "ziff"}, "bogus": true}`, "bogus"},
		{"unknown partition", `{"model": {"name": "zgb"}, "engine": {"name": "pndca", "partition": "hexagons"}}`, "partition builder"},
		{"unknown preset", `{"model": {"name": "zgb"}, "engine": {"name": "rsm"}, "init": {"preset": "stripes"}}`, "unknown preset"},
		{"unknown model", `{"model": {"name": "legomodel"}, "engine": {"name": "rsm"}}`, "model preset"},
		{"unknown model param", `{"model": {"name": "zgb", "params": {"kXX": 1}}, "engine": {"name": "rsm"}}`, "kXX"},
		{"model for model-free", `{"model": {"name": "zgb"}, "engine": {"name": "ziff"}}`, "model-free"},
		{"option not accepted", `{"model": {"name": "zgb"}, "engine": {"name": "rsm", "L": 5}}`, "does not accept"},
		{"bad fractions", `{"model": {"name": "zgb"}, "engine": {"name": "rsm"}, "init": {"preset": "random", "fractions": [1]}}`, "fractions"},
	}
	for _, tc := range cases {
		_, err := parsurf.ParseSpec([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSubstr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSubstr)
		}
	}
}

// The spec accessors expose what the ensemble and service layers need
// without building a session.
func TestSpecAccessors(t *testing.T) {
	spec := representativeSpec(t, "lpndca")
	if spec.EngineName() != "lpndca" {
		t.Errorf("EngineName %q", spec.EngineName())
	}
	if spec.Seed() != goldentrace.Seed {
		t.Errorf("Seed %d", spec.Seed())
	}
	if l0, l1 := spec.Extents(); l0 != goldentrace.Side || l1 != goldentrace.Side {
		t.Errorf("Extents %dx%d", l0, l1)
	}
}
