// Quickstart: simulate CO oxidation on a 100×100 lattice with the
// Random Selection Method and print the coverage evolution, using the
// Session API — model, lattice, engine-by-name, seed, run.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"parsurf"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

func main() {
	// The session wires everything: a periodic 100×100 lattice
	// (initially vacant), the seven-reaction CO-oxidation model of the
	// paper's Table I, and RSM — the paper's reference Dynamic Monte
	// Carlo engine — all seeded and reproducible.
	sess, err := parsurf.NewSession(
		parsurf.WithModel(parsurf.NewZGBModel(parsurf.DefaultZGBRates())),
		parsurf.WithLattice(100, 100),
		parsurf.WithEngine("rsm"),
		parsurf.WithSeed(2003),
	)
	if err != nil {
		panic(err)
	}

	co := &stats.Series{}
	o := &stats.Series{}
	obs := parsurf.ObserverFunc(func(t float64, cfg *parsurf.Config) {
		co.Append(t, cfg.Coverage(1))
		o.Append(t, cfg.Coverage(2))
	})
	if _, err := sess.Run(context.Background(), parsurf.Until(40), parsurf.SampleEvery(0.2, obs)); err != nil {
		panic(err)
	}

	fmt.Println("CO (o) and O (x) coverage vs time, ZGB model, RSM:")
	fmt.Print(trace.ASCIIPlot(16, 72, "ox", co, o))
	cfg := sess.Config()
	rsm := sess.Engine().(*parsurf.RSM) // concrete engine for its trial counter
	fmt.Printf("final: CO %.3f, O %.3f, vacant %.3f after %.1f time units (%d trials)\n",
		cfg.Coverage(1), cfg.Coverage(2), cfg.Coverage(0), sess.Engine().Time(), rsm.Trials())
}
