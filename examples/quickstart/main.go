// Quickstart: simulate CO oxidation on a 100×100 lattice with the
// Random Selection Method and print the coverage evolution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

func main() {
	// The surface: a periodic 100×100 lattice, initially vacant.
	lat := parsurf.NewSquareLattice(100)
	cfg := parsurf.NewConfig(lat)

	// The model: Table I of the paper — CO adsorption, dissociative O2
	// adsorption, CO+O → CO2.
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)

	// The engine: RSM, the paper's reference Dynamic Monte Carlo
	// algorithm. Everything is seeded and reproducible.
	sim := parsurf.NewRSM(cm, cfg, parsurf.NewRNG(2003))

	co := &stats.Series{}
	o := &stats.Series{}
	parsurf.Sample(sim, 0.2, 40, func(t float64) {
		co.Append(t, cfg.Coverage(1))
		o.Append(t, cfg.Coverage(2))
	})

	fmt.Println("CO (o) and O (x) coverage vs time, ZGB model, RSM:")
	fmt.Print(trace.ASCIIPlot(16, 72, "ox", co, o))
	fmt.Printf("final: CO %.3f, O %.3f, vacant %.3f after %.1f time units (%d trials)\n",
		cfg.Coverage(1), cfg.Coverage(2), cfg.Coverage(0), sim.Time(), sim.Trials())
}
