// Oscillations: the Pt(100) CO-oxidation model with surface
// reconstruction develops kinetic oscillations in the coverages (the
// system of the paper's §6). This example runs the exact DMC reference
// and the partitioned L-PNDCA side by side — two Sessions differing
// only in the engine name — and compares the detected oscillation.
//
//	go run ./examples/oscillations [-l 60] [-t 150] [-L 1]
package main

import (
	"context"
	"flag"
	"fmt"

	"parsurf"
	"parsurf/internal/cluster"
	"parsurf/internal/model"
	"parsurf/internal/stats"
	"parsurf/internal/trace"
)

func main() {
	l := flag.Int("l", 60, "lattice side (multiple of 5)")
	tEnd := flag.Float64("t", 150, "simulated time")
	trialsPerChunk := flag.Int("L", 1, "L-PNDCA trials per chunk selection")
	flag.Parse()

	ctx := context.Background()
	m := parsurf.NewPtCOModel(parsurf.DefaultPtCORates())

	// runCO builds a session for the named engine and records the CO
	// coverage (summed over both surface phases) every 0.25 time units.
	runCO := func(engine string, engOpts ...parsurf.EngineOption) (*stats.Series, *parsurf.Config) {
		sess, err := parsurf.NewSession(
			parsurf.WithModel(m),
			parsurf.WithLattice(*l, *l),
			parsurf.WithEngine(engine, engOpts...),
			parsurf.WithSeed(1),
		)
		if err != nil {
			panic(err)
		}
		co := &stats.Series{}
		obs := parsurf.ObserverFunc(func(t float64, cfg *parsurf.Config) {
			c, _, _ := parsurf.PtCoverages(cfg)
			co.Append(t, c)
		})
		if _, err := sess.Run(ctx, parsurf.Until(*tEnd), parsurf.SampleEvery(0.25, obs)); err != nil {
			panic(err)
		}
		return co, sess.Config()
	}

	// Reference: exact DMC (VSSM — same process as RSM, far fewer
	// wasted trials). Partitioned CA: L-PNDCA over the five-chunk
	// partition of Fig. 4 (the engine's default partition).
	refCO, refCfg := runCO("vssm")
	caCO, _ := runCO("lpndca", parsurf.Trials(*trialsPerChunk))

	fmt.Printf("CO coverage vs time on Pt(100), %dx%d: DMC (o) vs L-PNDCA L=%d (x)\n",
		*l, *l, *trialsPerChunk)
	fmt.Print(trace.ASCIIPlot(18, 76, "ox", refCO, caCO))

	report := func(name string, s *stats.Series) {
		if osc, ok := stats.DetectOscillation(s.Window(*tEnd/4, *tEnd), 800, 0.25); ok {
			fmt.Printf("%-22s period %.1f, amplitude %.3f, strength %.2f\n",
				name, osc.Period, osc.Amplitude, osc.Strength)
		} else {
			fmt.Printf("%-22s no sustained oscillation detected\n", name)
		}
	}
	report("DMC (VSSM):", refCO)
	report(fmt.Sprintf("L-PNDCA (L=%d):", *trialsPerChunk), caCO)
	fmt.Printf("RMSD between the trajectories: %.3f\n",
		stats.RMSD(refCO, caCO, *tEnd/4, *tEnd, 400))

	// Spatial structure at the end of the run: the 1×1 ("square")
	// phase forms islands whose growth and shrinkage drives the cycle.
	sq := cluster.Summarize(cluster.GroupComponents(refCfg,
		model.PtSqEmpty, model.PtSqCO, model.PtSqO))
	fmt.Printf("square-phase islands at t=%.0f (DMC state): %d islands, largest %d sites, mean %.1f\n",
		*tEnd, sq.Clusters, sq.Largest, sq.MeanSize)
}
