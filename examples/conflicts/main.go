// Conflicts: the Fig. 2 problem made measurable. Dense particles
// diffusing under a fully synchronous CA update collide — two particles
// propose hops into the same vacancy — and the conflict rate grows with
// density. Partitioned updates (PNDCA) avoid the problem by
// construction: this example counts conflicts across densities and
// verifies particle conservation, then shows the cluster structure of
// the final state. Both engines are built by name through the Session
// API.
//
//	go run ./examples/conflicts
package main

import (
	"context"
	"fmt"

	"parsurf"
	"parsurf/internal/cluster"
	"parsurf/internal/trace"
)

func main() {
	ctx := context.Background()
	m := parsurf.NewDiffusionModel(1)

	fmt.Println("synchronous NDCA on diffusing particles (Fig. 2 scenario):")
	rows := [][]string{}
	for _, density := range []float64{0.1, 0.3, 0.5, 0.7} {
		sess, err := parsurf.NewSession(
			parsurf.WithModel(m),
			parsurf.WithLattice(64, 64),
			parsurf.WithEngine("syncndca"),
			parsurf.WithSeed(8),
			parsurf.WithInit(parsurf.RandomInit(1-density, density)),
		)
		if err != nil {
			panic(err)
		}
		before := sess.Config().Count(1)
		if _, err := sess.Run(ctx, parsurf.ForSteps(100)); err != nil {
			panic(err)
		}
		sync := sess.Engine().(*parsurf.SyncNDCA) // conflict counters
		conflictRate := float64(sync.Conflicts()) / float64(sync.Proposed())
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", density),
			fmt.Sprintf("%d", sync.Proposed()),
			fmt.Sprintf("%d", sync.Conflicts()),
			fmt.Sprintf("%.1f%%", conflictRate*100),
			fmt.Sprintf("%v", sess.Config().Count(1) == before),
		})
	}
	fmt.Print(trace.Table(
		[]string{"density", "proposals", "conflicts", "conflict rate", "conserved"}, rows))

	// The same workload under PNDCA: zero conflicts by construction.
	// The partition comes from the named modular-colouring builder,
	// resolved against the session's model and lattice — the same name
	// a serialized spec would carry.
	sess, err := parsurf.NewSession(
		parsurf.WithModel(m),
		parsurf.WithLattice(64, 64),
		parsurf.WithEngine("pndca",
			parsurf.PartitionNamed("modular:16"),
			parsurf.Workers(4),
		),
		parsurf.WithSeed(8),
		parsurf.WithInit(parsurf.RandomInit(0.5, 0.5)),
	)
	if err != nil {
		panic(err)
	}
	before := sess.Config().Count(1)
	if _, err := sess.Run(ctx, parsurf.ForSteps(100)); err != nil {
		panic(err)
	}
	p := sess.Engine().(*parsurf.PNDCA)
	fmt.Printf("\nPNDCA over %d chunks, 4 workers: %d reactions, conserved: %v, conflicts: none possible\n",
		p.Partition().NumChunks(), p.Successes(), sess.Config().Count(1) == before)

	st := cluster.Summarize(cluster.SpeciesComponents(sess.Config(), 1))
	fmt.Printf("final particle clusters: %d clusters, largest %d, mean size %.1f\n",
		st.Clusters, st.Largest, st.MeanSize)
}
