// Conflicts: the Fig. 2 problem made measurable. Dense particles
// diffusing under a fully synchronous CA update collide — two particles
// propose hops into the same vacancy — and the conflict rate grows with
// density. Partitioned updates (PNDCA) avoid the problem by
// construction: this example counts conflicts across densities and
// verifies particle conservation, then shows the cluster structure of
// the final state.
//
//	go run ./examples/conflicts
package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/cluster"
	"parsurf/internal/trace"
)

func main() {
	lat := parsurf.NewSquareLattice(64)
	m := parsurf.NewDiffusionModel(1)
	cm := parsurf.MustCompile(m, lat)

	fmt.Println("synchronous NDCA on diffusing particles (Fig. 2 scenario):")
	rows := [][]string{}
	for _, density := range []float64{0.1, 0.3, 0.5, 0.7} {
		cfg := parsurf.NewConfig(lat)
		cfg.Randomize([]float64{1 - density, density}, parsurf.NewRNG(7).Float64)
		before := cfg.Count(1)
		sim := parsurf.NewSyncNDCA(cm, cfg, parsurf.NewRNG(8))
		for i := 0; i < 100; i++ {
			sim.Step()
		}
		conflictRate := float64(sim.Conflicts()) / float64(sim.Proposed())
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", density),
			fmt.Sprintf("%d", sim.Proposed()),
			fmt.Sprintf("%d", sim.Conflicts()),
			fmt.Sprintf("%.1f%%", conflictRate*100),
			fmt.Sprintf("%v", cfg.Count(1) == before),
		})
	}
	fmt.Print(trace.Table(
		[]string{"density", "proposals", "conflicts", "conflict rate", "conserved"}, rows))

	// The same workload under PNDCA: zero conflicts by construction.
	part, err := parsurf.ModularColoring(m, lat, 16)
	if err != nil {
		panic(err)
	}
	cfg := parsurf.NewConfig(lat)
	cfg.Randomize([]float64{0.5, 0.5}, parsurf.NewRNG(7).Float64)
	before := cfg.Count(1)
	p := parsurf.NewPNDCA(cm, cfg, parsurf.NewRNG(8), part)
	p.Workers = 4
	for i := 0; i < 100; i++ {
		p.Step()
	}
	fmt.Printf("\nPNDCA over %d chunks, 4 workers: %d reactions, conserved: %v, conflicts: none possible\n",
		part.NumChunks(), p.Successes(), cfg.Count(1) == before)

	st := cluster.Summarize(cluster.SpeciesComponents(cfg, 1))
	fmt.Printf("final particle clusters: %d clusters, largest %d, mean size %.1f\n",
		st.Clusters, st.Largest, st.MeanSize)
}
