// Parallel speedup: regenerate the paper's Fig. 7 — the speedup
// T(1,N)/T(p,N) of the partitioned NDCA as a function of system size N
// and processor count p — on the simulated parallel machine, verify
// with a real goroutine-parallel PNDCA Session that parallel execution
// is bit-identical to sequential, and measure the wall-clock speedup of
// the ensemble runner on a replicated ZGB workload.
//
//	go run ./examples/parallel_speedup
package main

import (
	"context"
	"fmt"
	"time"

	"parsurf"
	"parsurf/internal/trace"
)

func main() {
	ctx := context.Background()
	mm := parsurf.DefaultMachine()
	sides := []int{200, 400, 600, 800, 1000}
	workers := []int{2, 4, 6, 8, 10}

	surface, err := mm.SpeedupSurface(sides, workers)
	if err != nil {
		panic(err)
	}
	header := []string{"N \\ p"}
	for _, p := range workers {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	rows := make([][]string, len(sides))
	for si, side := range sides {
		row := []string{fmt.Sprintf("%dx%d", side, side)}
		for pi := range workers {
			row = append(row, fmt.Sprintf("%.2f", surface[si][pi]))
		}
		rows[si] = row
	}
	fmt.Println("modeled PNDCA speedup T(1,N)/T(p,N) (paper Fig. 7):")
	fmt.Print(trace.Table(header, rows))

	// Fidelity check on real hardware: the goroutine-parallel sweep
	// must reproduce the sequential trajectory exactly. Two sessions
	// differing only in the worker count.
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	run := func(w int) *parsurf.Config {
		sess, err := parsurf.NewSession(
			parsurf.WithModel(m),
			parsurf.WithLattice(100, 100),
			parsurf.WithEngine("pndca", parsurf.Workers(w)),
			parsurf.WithSeed(7),
		)
		if err != nil {
			panic(err)
		}
		if _, err := sess.Run(ctx, parsurf.ForSteps(50)); err != nil {
			panic(err)
		}
		return sess.Config()
	}
	seq, par := run(1), run(8)
	fmt.Printf("\nreal goroutine check (100x100, 50 steps): parallel == sequential: %v\n",
		seq.Equal(par))

	// Replica-level parallelism: RunEnsemble executes independent
	// replicas on split RNG streams and streams them through a
	// per-grid-point merge (memory O(species × grid), replicas are
	// merged in index order); the result is bit-identical for every
	// worker count, only the wall clock changes.
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(64, 64),
		parsurf.WithEngine("ziff", parsurf.COFraction(0.51)),
		parsurf.WithSeed(42),
	)
	if err != nil {
		panic(err)
	}
	const replicas = 16
	timeEnsemble := func(w int) (time.Duration, *parsurf.Ensemble) {
		start := time.Now()
		ens, err := parsurf.RunEnsemble(ctx, spec, replicas, w, 100, 1)
		if err != nil {
			panic(err)
		}
		return time.Since(start), ens
	}
	t1, e1 := timeEnsemble(1)
	t4, e4 := timeEnsemble(4)
	same := true
	for sp := range e1.Mean {
		for i := range e1.Mean[sp].X {
			if e1.Mean[sp].X[i] != e4.Mean[sp].X[i] {
				same = false
			}
		}
	}
	fmt.Printf("\nensemble of %d ZGB replicas (64x64, 100 MCS): 1 worker %.2fs, 4 workers %.2fs — %.1fx speedup, identical results: %v\n",
		replicas, t1.Seconds(), t4.Seconds(), t1.Seconds()/t4.Seconds(), same)
	co := e1.Mean[1] // CO coverage ensemble mean
	fmt.Printf("ensemble-mean CO coverage at t=100: %.3f ± %.3f\n",
		co.X[len(co.X)-1], e1.Std[1].X[len(e1.Std[1].X)-1])

	// Parameter-sweep parallelism: RunSweep flattens every (variant,
	// replica) job of a whole y_CO scan onto one worker pool — no
	// per-variant barrier, so the pool stays busy across the sweep and
	// the results are still bit-identical for any worker count.
	ysweep := []float64{0.46, 0.51, 0.56}
	sweepSpecs := make([]*parsurf.SessionSpec, len(ysweep))
	for i, y := range ysweep {
		s, err := parsurf.NewSpec(
			parsurf.WithLattice(64, 64),
			parsurf.WithEngine("ziff", parsurf.COFraction(y)),
			parsurf.WithSeed(42+uint64(i)),
		)
		if err != nil {
			panic(err)
		}
		sweepSpecs[i] = s
	}
	const sweepReplicas = 8
	start := time.Now()
	ensembles, err := parsurf.RunSweep(ctx, sweepSpecs, sweepReplicas, 4, 60, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsweep of %d y points × %d replicas (64x64, 60 MCS) on 4 workers: %.2fs\n",
		len(ysweep), sweepReplicas, time.Since(start).Seconds())
	for i, ens := range ensembles {
		last := ens.Grid.Len() - 1
		fmt.Printf("  y=%.2f: θ_CO = %.3f ± %.3f\n",
			ysweep[i], ens.Mean[1].X[last], ens.Std[1].X[last])
	}
}
