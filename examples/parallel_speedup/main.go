// Parallel speedup: regenerate the paper's Fig. 7 — the speedup
// T(1,N)/T(p,N) of the partitioned NDCA as a function of system size N
// and processor count p — on the simulated parallel machine, and verify
// with a real goroutine-parallel PNDCA run that parallel execution is
// bit-identical to sequential.
//
//	go run ./examples/parallel_speedup
package main

import (
	"fmt"

	"parsurf"
	"parsurf/internal/trace"
)

func main() {
	mm := parsurf.DefaultMachine()
	sides := []int{200, 400, 600, 800, 1000}
	workers := []int{2, 4, 6, 8, 10}

	surface, err := mm.SpeedupSurface(sides, workers)
	if err != nil {
		panic(err)
	}
	header := []string{"N \\ p"}
	for _, p := range workers {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	rows := make([][]string, len(sides))
	for si, side := range sides {
		row := []string{fmt.Sprintf("%dx%d", side, side)}
		for pi := range workers {
			row = append(row, fmt.Sprintf("%.2f", surface[si][pi]))
		}
		rows[si] = row
	}
	fmt.Println("modeled PNDCA speedup T(1,N)/T(p,N) (paper Fig. 7):")
	fmt.Print(trace.Table(header, rows))

	// Fidelity check on real hardware: the goroutine-parallel sweep
	// must reproduce the sequential trajectory exactly.
	lat := parsurf.NewSquareLattice(100)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	part, _ := parsurf.VonNeumann5(lat)

	run := func(workers int) *parsurf.Config {
		cfg := parsurf.NewConfig(lat)
		p := parsurf.NewPNDCA(cm, cfg, parsurf.NewRNG(7), part)
		p.Workers = workers
		for i := 0; i < 50; i++ {
			p.Step()
		}
		return cfg
	}
	seq, par := run(1), run(8)
	fmt.Printf("\nreal goroutine check (100x100, 50 steps): parallel == sequential: %v\n",
		seq.Equal(par))
}
