// ZGB phase diagram: sweep the CO fraction y across the kinetic phase
// transitions of the Ziff–Gulari–Barshad model and report ensemble
// coverages, CO2 rate and the estimated transition points y1 and y2.
// Each point is a spec variant of one parsurf.RunSweep call: an
// ensemble of replicas runs per y on a single flat worker pool, the
// merged Mean/Std series live on the shared TimeGrid, and per-replica
// counters (CO2 production, poisoning) stream through a replica
// observer instead of retaining raw members.
//
//	go run ./examples/zgb_phase_diagram [-l 48] [-fine] [-replicas 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"runtime"

	"parsurf"
	"parsurf/internal/trace"
	"parsurf/internal/ziff"
)

func main() {
	l := flag.Int("l", 48, "lattice side")
	fine := flag.Bool("fine", false, "fine y grid (slower, sharper transitions)")
	replicas := flag.Int("replicas", 4, "stochastic replicas per y point")
	flag.Parse()

	var ys []float64
	step := 0.02
	if *fine {
		step = 0.005
	}
	for y := 0.30; y <= 0.62+1e-9; y += step {
		ys = append(ys, y)
	}

	equil, meas := 300, 100
	until, every := float64(equil+meas), 1.0

	specs := make([]*parsurf.SessionSpec, len(ys))
	for i, y := range ys {
		spec, err := parsurf.NewSpec(
			parsurf.WithLattice(*l, *l),
			parsurf.WithEngine("ziff", parsurf.COFraction(y)),
			parsurf.WithSeed(42+uint64(i)),
		)
		if err != nil {
			panic(err)
		}
		specs[i] = spec
	}

	// Replica-local CO2 ledgers, one slot per (y variant, replica);
	// each slot is only touched by its own replica's goroutine.
	ledgers := make([][]ziff.ReplicaLedger, len(ys))
	for v := range ledgers {
		ledgers[v] = make([]ziff.ReplicaLedger, *replicas)
	}
	ensembles, err := parsurf.RunSweep(context.Background(), specs, *replicas, runtime.NumCPU(),
		until, every,
		parsurf.ObserveReplicas(func(variant, replica int, t float64, sess *parsurf.Session) {
			ledgers[variant][replica].Record(sess.Engine().(*parsurf.ZiffZGB), t, equil)
		}))
	if err != nil {
		panic(err)
	}

	points := make([]ziff.PhasePoint, len(ys))
	sigmaCO := make([]float64, len(ys))
	for v, ens := range ensembles {
		points[v] = ziff.EnsemblePoint(ys[v], ens.Mean, equil, meas, float64(*l)*float64(*l), ledgers[v])
		// Replica spread of the CO coverage over the same window.
		sigmaCO[v] = ziff.WindowMean(ens.Std[ziff.CO], equil)
	}

	rows := make([][]string, 0, len(points))
	for v, p := range points {
		state := "reactive"
		if p.Poisoned {
			if p.CoCO > p.CoO {
				state = "CO-poisoned"
			} else {
				state = "O-poisoned"
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.Y),
			fmt.Sprintf("%.3f", p.CoCO),
			fmt.Sprintf("%.3f", sigmaCO[v]),
			fmt.Sprintf("%.3f", p.CoO),
			fmt.Sprintf("%.3f", p.CoEmpty),
			fmt.Sprintf("%.4f", p.Rate),
			state,
		})
	}
	fmt.Printf("ensemble of %d replicas per y point (%dx%d lattice):\n", *replicas, *l, *l)
	fmt.Print(trace.Table([]string{"y_CO", "θ_CO", "σ(θ_CO)", "θ_O", "θ_*", "R_CO2", "state"}, rows))

	if y1, y2, ok := ziff.Transitions(points); ok {
		fmt.Printf("\nkinetic transitions: y1 ≈ %.3f (literature 0.39), y2 ≈ %.3f (literature 0.525)\n", y1, y2)
	} else {
		fmt.Println("\ntransitions not bracketed by this sweep")
	}
}
