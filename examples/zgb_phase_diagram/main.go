// ZGB phase diagram: sweep the CO fraction y across the kinetic phase
// transitions of the Ziff–Gulari–Barshad model and report coverages,
// CO2 rate and the estimated transition points y1 and y2.
//
//	go run ./examples/zgb_phase_diagram [-l 48] [-fine]
package main

import (
	"flag"
	"fmt"

	"parsurf/internal/trace"
	"parsurf/internal/ziff"
)

func main() {
	l := flag.Int("l", 48, "lattice side")
	fine := flag.Bool("fine", false, "fine y grid (slower, sharper transitions)")
	flag.Parse()

	var ys []float64
	step := 0.02
	if *fine {
		step = 0.005
	}
	for y := 0.30; y <= 0.62+1e-9; y += step {
		ys = append(ys, y)
	}

	equil, measure := 300, 100
	points := ziff.Sweep(*l, ys, equil, measure, 42)

	rows := make([][]string, 0, len(points))
	for _, p := range points {
		state := "reactive"
		if p.Poisoned {
			if p.CoCO > p.CoO {
				state = "CO-poisoned"
			} else {
				state = "O-poisoned"
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.Y),
			fmt.Sprintf("%.3f", p.CoCO),
			fmt.Sprintf("%.3f", p.CoO),
			fmt.Sprintf("%.3f", p.CoEmpty),
			fmt.Sprintf("%.4f", p.Rate),
			state,
		})
	}
	fmt.Print(trace.Table([]string{"y_CO", "θ_CO", "θ_O", "θ_*", "R_CO2", "state"}, rows))

	if y1, y2, ok := ziff.Transitions(points); ok {
		fmt.Printf("\nkinetic transitions: y1 ≈ %.3f (literature 0.39), y2 ≈ %.3f (literature 0.525)\n", y1, y2)
	} else {
		fmt.Println("\ntransitions not bracketed by this sweep")
	}
}
