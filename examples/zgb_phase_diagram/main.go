// ZGB phase diagram: sweep the CO fraction y across the kinetic phase
// transitions of the Ziff–Gulari–Barshad model and report coverages,
// CO2 rate and the estimated transition points y1 and y2. Each point is
// a Session running the model-free "ziff" engine at a different y.
//
//	go run ./examples/zgb_phase_diagram [-l 48] [-fine]
package main

import (
	"context"
	"flag"
	"fmt"

	"parsurf"
	"parsurf/internal/trace"
	"parsurf/internal/ziff"
)

// measure runs one phase-diagram point through the Session API: equil
// MC steps of relaxation, then measure MC steps of averaging (the ziff
// clock counts MC steps). A poisoned lattice is inert, so both phases
// stop early when poisoning is detected instead of burning the full
// budget on a frozen surface.
func measure(ctx context.Context, l int, y float64, equil, measure int, seed uint64) ziff.PhasePoint {
	sess, err := parsurf.NewSession(
		parsurf.WithLattice(l, l),
		parsurf.WithEngine("ziff", parsurf.COFraction(y)),
		parsurf.WithSeed(seed),
	)
	if err != nil {
		panic(err)
	}
	z := sess.Engine().(*parsurf.ZiffZGB)
	step := func() {
		if _, err := sess.Run(ctx, parsurf.ForSteps(1)); err != nil {
			panic(err)
		}
	}
	for i := 0; i < equil && !z.Poisoned(); i++ {
		step()
	}
	co2Before := z.CO2Count()
	cfg := sess.Config()
	var sumCO, sumO, sumE float64
	steps := 0
	for i := 0; i < measure; i++ {
		step()
		steps++
		sumCO += cfg.Coverage(ziff.CO)
		sumO += cfg.Coverage(ziff.O)
		sumE += cfg.Coverage(ziff.Empty)
		if z.Poisoned() {
			break
		}
	}
	pt := ziff.PhasePoint{Y: y, Poisoned: z.Poisoned()}
	n := float64(sess.Lattice().N())
	pt.CoCO = sumCO / float64(steps)
	pt.CoO = sumO / float64(steps)
	pt.CoEmpty = sumE / float64(steps)
	pt.Rate = float64(z.CO2Count()-co2Before) / float64(steps) / n
	return pt
}

func main() {
	l := flag.Int("l", 48, "lattice side")
	fine := flag.Bool("fine", false, "fine y grid (slower, sharper transitions)")
	flag.Parse()

	var ys []float64
	step := 0.02
	if *fine {
		step = 0.005
	}
	for y := 0.30; y <= 0.62+1e-9; y += step {
		ys = append(ys, y)
	}

	ctx := context.Background()
	equil, meas := 300, 100
	points := make([]ziff.PhasePoint, len(ys))
	for i, y := range ys {
		points[i] = measure(ctx, *l, y, equil, meas, 42+uint64(i))
	}

	rows := make([][]string, 0, len(points))
	for _, p := range points {
		state := "reactive"
		if p.Poisoned {
			if p.CoCO > p.CoO {
				state = "CO-poisoned"
			} else {
				state = "O-poisoned"
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p.Y),
			fmt.Sprintf("%.3f", p.CoCO),
			fmt.Sprintf("%.3f", p.CoO),
			fmt.Sprintf("%.3f", p.CoEmpty),
			fmt.Sprintf("%.4f", p.Rate),
			state,
		})
	}
	fmt.Print(trace.Table([]string{"y_CO", "θ_CO", "θ_O", "θ_*", "R_CO2", "state"}, rows))

	if y1, y2, ok := ziff.Transitions(points); ok {
		fmt.Printf("\nkinetic transitions: y1 ≈ %.3f (literature 0.39), y2 ≈ %.3f (literature 0.525)\n", y1, y2)
	} else {
		fmt.Println("\ntransitions not bracketed by this sweep")
	}
}
