// Package parsurf is a library for stochastic simulation of surface
// reactions on two-dimensional lattices, reproducing "Methods for
// parallel simulations of surface reactions" (Nedea, Lukkien, Jansen,
// Hilbers; IPPS 2003 / arXiv:physics/0209017).
//
// It provides:
//
//   - the reaction-type formalism of the paper's §2 (species domains,
//     translation-invariant patterns, rate constants);
//   - exact Dynamic Monte Carlo engines: the Random Selection Method
//     (RSM), the Variable Step Size Method (VSSM/direct) and the First
//     Reaction Method (FRM);
//   - Cellular Automaton engines: NDCA, synchronous NDCA with conflict
//     accounting, and Block CA with shifting tilings;
//   - the paper's contribution: lattice partitions satisfying the
//     non-overlap rule, and the partitioned algorithms PNDCA, L-PNDCA
//     (four chunk-selection strategies) and the type-partitioned
//     variant, with bit-deterministic parallel execution;
//   - the evaluation models: the Ziff–Gulari–Barshad CO-oxidation model
//     (Table I) and a Pt(100) surface-reconstruction model with kinetic
//     oscillations, plus diffusion/Ising/single-file auxiliaries;
//   - a simulated parallel machine reproducing the paper's speedup
//     study (Fig. 7), and a channel-based domain-decomposition RSM
//     baseline.
//
// The recommended entry point is the Session API: every engine is
// registered under a string name (Engines lists them) and a Session
// wires model, lattice, engine and seed in one declarative call:
//
//	sess, err := parsurf.NewSession(
//		parsurf.WithModelPreset("zgb", nil),
//		parsurf.WithLattice(256, 256),
//		parsurf.WithEngine("lpndca", parsurf.Trials(100), parsurf.Strategy(parsurf.RateWeighted)),
//		parsurf.WithSeed(42),
//	)
//	stats, err := sess.Run(ctx, parsurf.Until(200), parsurf.SampleEvery(0.25, obs))
//
// A SessionSpec is closure-free plain data: partitions, type splits,
// initial conditions and models are all named registry entries, so a
// spec round-trips exactly through JSON (MarshalJSON/UnmarshalJSON,
// ParseSpec; schema in internal/specfile) and reruns bit-identically —
// from Go, from a file (`surfsim -spec run.json`), or over HTTP
// (cmd/surfd, backed by the internal/job manager: bounded runner pool,
// per-job progress, cancellation).
//
// RunEnsemble executes independent replicas of a SessionSpec on split
// RNG streams across goroutines, sampling every replica on a shared
// TimeGrid and streaming them through a per-grid-point moment merge;
// RunSweep runs one such ensemble per spec variant over a single
// worker pool — the workhorses for phase-diagram and criteria sweeps.
// The direct constructors (NewRSM, NewLPNDCA, …) remain for
// fine-grained control; a Session with the same seed reproduces their
// trajectories bit for bit.
//
// The façade in this package re-exports the pieces needed for everyday
// use; the sub-packages under internal/ carry the implementations and
// their documentation.
package parsurf

import (
	"parsurf/internal/ca"
	"parsurf/internal/core"
	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/machine"
	"parsurf/internal/model"
	"parsurf/internal/parallel"
	"parsurf/internal/partition"
	"parsurf/internal/rng"
	"parsurf/internal/stats"
	"parsurf/internal/ziff"
)

// Core lattice and model types.
type (
	// Lattice is the periodic L0×L1 site grid Ω.
	Lattice = lattice.Lattice
	// Config is a system state, a complete assignment Ω → D.
	Config = lattice.Config
	// Species is an element of the particle domain D.
	Species = lattice.Species
	// Vec is a translation-invariant lattice offset.
	Vec = lattice.Vec
	// Model is a species domain plus reaction types.
	Model = model.Model
	// ReactionType is one reaction rule with its rate constant.
	ReactionType = model.ReactionType
	// Triple is one (offset, source, target) element of a pattern.
	Triple = model.Triple
	// Compiled is a model bound to a lattice with precomputed tables.
	Compiled = model.Compiled
	// Partition is a disjoint chunk cover of the lattice.
	Partition = partition.Partition
	// TypeSplit is the Ω×T partitioning of the type-partitioned method.
	TypeSplit = partition.TypeSplit
	// Simulator is the common interface of every engine.
	Simulator = dmc.Simulator
	// Series is a sampled time series.
	Series = stats.Series
	// RNG is the deterministic splittable random source.
	RNG = rng.Source
	// MachineModel is the virtual parallel machine of the Fig. 7 study.
	MachineModel = machine.Model
)

// Engine types.
type (
	// RSM is the Random Selection Method (paper §3).
	RSM = dmc.RSM
	// VSSM is the variable-step-size (direct) method.
	VSSM = dmc.VSSM
	// FRM is the first reaction method.
	FRM = dmc.FRM
	// NDCA is the non-deterministic cellular automaton (paper §4).
	NDCA = ca.NDCA
	// SyncNDCA is the synchronous NDCA with conflict resolution.
	SyncNDCA = ca.SyncNDCA
	// BCA is the block cellular automaton (paper §5, Fig. 3).
	BCA = ca.BCA
	// PNDCA is the partitioned NDCA (paper §5).
	PNDCA = core.PNDCA
	// LPNDCA is the generalised L-trials partitioned NDCA (paper §5).
	LPNDCA = core.LPNDCA
	// TypePartitioned is the Ω×T-partitioned algorithm (paper §5).
	TypePartitioned = core.TypePartitioned
	// DDRSM is the Segers-style domain-decomposition RSM baseline.
	DDRSM = parallel.DDRSM
	// ZiffZGB is the classic adsorption-limited ZGB simulation.
	ZiffZGB = ziff.ZGB
)

// Chunk-selection strategies for LPNDCA.
const (
	AllInOrder        = core.AllInOrder
	AllRandomOrder    = core.AllRandomOrder
	RandomReplacement = core.RandomReplacement
	RateWeighted      = core.RateWeighted
)

// Model parameter bundles.
type (
	// ZGBRates are the CO-oxidation rate constants of Table I.
	ZGBRates = model.ZGBRates
	// PtCORates parameterise the Pt(100) reconstruction model.
	PtCORates = model.PtCORates
)

// NewLattice returns a periodic l0×l1 lattice.
func NewLattice(l0, l1 int) *Lattice { return lattice.New(l0, l1) }

// NewSquareLattice returns an l×l lattice.
func NewSquareLattice(l int) *Lattice { return lattice.NewSquare(l) }

// NewConfig returns the all-vacant configuration on lat.
func NewConfig(lat *Lattice) *Config { return lattice.NewConfig(lat) }

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// NewZGBModel builds the seven-reaction-type CO-oxidation model of the
// paper's Table I.
func NewZGBModel(r ZGBRates) *Model { return model.NewZGB(r) }

// DefaultZGBRates returns rates inside the reactive window.
func DefaultZGBRates() ZGBRates { return model.DefaultZGBRates() }

// NewPtCOModel builds the Pt(100) CO-oxidation model with surface
// reconstruction (the oscillating system of the paper's §6).
func NewPtCOModel(r PtCORates) *Model { return model.NewPtCO(r) }

// DefaultPtCORates returns rates in the oscillatory regime.
func DefaultPtCORates() PtCORates { return model.DefaultPtCORates() }

// NewDiffusionModel builds the single-species hop model of Fig. 2.
func NewDiffusionModel(hop float64) *Model { return model.NewDimerDiffusion(hop) }

// NewIsingModel builds a Metropolis spin-flip Ising model with coupling
// betaJ (in units of kB·T).
func NewIsingModel(betaJ float64) *Model { return model.NewIsing(betaJ) }

// Compile binds a model to a lattice.
func Compile(m *Model, lat *Lattice) (*Compiled, error) { return model.Compile(m, lat) }

// MustCompile is Compile that panics on error.
func MustCompile(m *Model, lat *Lattice) *Compiled { return model.MustCompile(m, lat) }

// NewRSM returns a Random Selection Method engine.
func NewRSM(cm *Compiled, cfg *Config, src *RNG) *RSM { return dmc.NewRSM(cm, cfg, src) }

// NewVSSM returns a variable-step-size (direct method) engine.
func NewVSSM(cm *Compiled, cfg *Config, src *RNG) *VSSM { return dmc.NewVSSM(cm, cfg, src) }

// NewFRM returns a first-reaction-method engine.
func NewFRM(cm *Compiled, cfg *Config, src *RNG) *FRM { return dmc.NewFRM(cm, cfg, src) }

// NewNDCA returns a non-deterministic CA engine.
func NewNDCA(cm *Compiled, cfg *Config, src *RNG) *NDCA { return ca.NewNDCA(cm, cfg, src) }

// NewSyncNDCA returns a synchronous NDCA with conflict resolution.
func NewSyncNDCA(cm *Compiled, cfg *Config, src *RNG) *SyncNDCA {
	return ca.NewSyncNDCA(cm, cfg, src)
}

// NewPNDCA returns a partitioned NDCA over the given partition.
func NewPNDCA(cm *Compiled, cfg *Config, src *RNG, p *Partition) *PNDCA {
	return core.NewPNDCA(cm, cfg, src, p)
}

// NewLPNDCA returns the generalised L-PNDCA with L trials per chunk
// selection.
func NewLPNDCA(cm *Compiled, cfg *Config, src *RNG, p *Partition, l int) *LPNDCA {
	return core.NewLPNDCA(cm, cfg, src, p, l)
}

// NewTypePartitioned returns the Ω×T-partitioned engine.
func NewTypePartitioned(cm *Compiled, cfg *Config, src *RNG, ts *TypeSplit) *TypePartitioned {
	return core.NewTypePartitioned(cm, cfg, src, ts)
}

// NewDDRSM returns the domain-decomposition RSM baseline with p strips.
func NewDDRSM(cm *Compiled, cfg *Config, src *RNG, p int) (*DDRSM, error) {
	return parallel.NewDDRSM(cm, cfg, src, p)
}

// NewZiff returns the classic adsorption-limited ZGB simulation with CO
// fraction y.
func NewZiff(lat *Lattice, src *RNG, y float64) *ZiffZGB { return ziff.New(lat, src, y) }

// VonNeumann5 returns the five-chunk partition of Fig. 4.
func VonNeumann5(lat *Lattice) (*Partition, error) { return partition.VonNeumann5(lat) }

// Checkerboard returns the two-chunk partition of Fig. 6.
func Checkerboard(lat *Lattice) (*Partition, error) { return partition.Checkerboard(lat) }

// SingleChunk returns the m=1 partition (L-PNDCA ≡ RSM).
func SingleChunk(lat *Lattice) *Partition { return partition.SingleChunk(lat) }

// Singletons returns the m=N partition (L-PNDCA with L=1 ≡ RSM).
func Singletons(lat *Lattice) *Partition { return partition.Singletons(lat) }

// ModularColoring searches for the smallest valid modular colouring for
// the model on the lattice.
func ModularColoring(m *Model, lat *Lattice, maxK int) (*Partition, error) {
	return partition.ModularColoring(m, lat, maxK)
}

// VerifyNonOverlap checks the all-types non-overlap rule of §5.
func VerifyNonOverlap(p *Partition, m *Model) error { return partition.VerifyNonOverlap(p, m) }

// SplitByDirection builds the Table II reaction-type split with
// checkerboard partitions.
func SplitByDirection(m *Model, lat *Lattice) (*TypeSplit, error) {
	return partition.SplitByDirection(m, lat)
}

// DefaultMachine returns the virtual parallel machine calibrated to the
// paper's setting (Fig. 7).
func DefaultMachine() MachineModel { return machine.Default() }

// RunUntil advances sim until its clock reaches t.
func RunUntil(sim Simulator, t float64) int { return dmc.RunUntil(sim, t) }

// Sample runs sim, invoking observe at every dt of simulated time up to
// tEnd.
func Sample(sim Simulator, dt, tEnd float64, observe func(t float64)) {
	dmc.Sample(sim, dt, tEnd, observe)
}

// PtCoverages extracts (CO, O, square-phase) coverages from a Pt(100)
// configuration.
func PtCoverages(c *Config) (co, o, sq float64) { return model.PtCoverages(c) }
