package parsurf_test

import (
	"bytes"
	"strings"
	"testing"

	"parsurf"
	"parsurf/internal/goldentrace"
	"parsurf/internal/persist"
)

// checkpointSpec builds a canonical session spec for the named engine:
// the shared ZGB preset on the golden-trace lattice (the model-free
// ziff engine runs bare), with a random initial coverage so the
// checkpointed configuration is never the trivial all-empty one.
func checkpointSpec(t *testing.T, engine string, engOpts ...parsurf.EngineOption) *parsurf.SessionSpec {
	t.Helper()
	opts := []parsurf.SessionOption{
		parsurf.WithLattice(goldentrace.Side, goldentrace.Side),
		parsurf.WithEngine(engine, engOpts...),
		parsurf.WithSeed(goldentrace.Seed),
	}
	es, ok := parsurf.LookupEngine(engine)
	if !ok {
		t.Fatalf("engine %q not registered", engine)
	}
	if !es.ModelFree {
		opts = append(opts,
			parsurf.WithModelPreset("zgb", nil),
			parsurf.WithInit(parsurf.RandomInit(0.6, 0.25, 0.15)))
	}
	spec, err := parsurf.NewSpec(opts...)
	if err != nil {
		t.Fatalf("%s: %v", engine, err)
	}
	return spec
}

// checkCheckpointResume asserts the checkpoint/resume contract for one
// spec: running N steps, checkpointing and resuming must continue the
// trajectory bit for bit — the resumed session's next M steps
// fingerprint identically to an uninterrupted N+M run, and taking the
// checkpoint must not perturb the session it is taken from.
func checkCheckpointResume(t *testing.T, spec *parsurf.SessionSpec) {
	t.Helper()
	name := spec.EngineName()
	total := goldentrace.StepsFor(name)
	n := total / 3
	m := total - n

	// Uninterrupted reference: N silent steps, then M fingerprinted.
	ref, err := spec.Session()
	if err != nil {
		t.Fatalf("%s: building reference session: %v", name, err)
	}
	prefixRef := goldentrace.Fingerprint(ref.Engine(), n)
	wantTail := goldentrace.Fingerprint(ref.Engine(), m)

	// Interrupted run: same N steps, checkpoint, then continue.
	work, err := spec.Session()
	if err != nil {
		t.Fatalf("%s: building session: %v", name, err)
	}
	if got := goldentrace.Fingerprint(work.Engine(), n); got != prefixRef {
		t.Fatalf("%s: two sessions from one spec diverge within %d steps", name, n)
	}
	stepsAtCP, timeAtCP := work.Engine().Steps(), work.Engine().Time()
	var buf bytes.Buffer
	if err := work.Checkpoint(&buf); err != nil {
		t.Fatalf("%s: checkpoint: %v", name, err)
	}
	if got := goldentrace.Fingerprint(work.Engine(), m); got != wantTail {
		t.Errorf("%s: trajectory after taking a checkpoint fingerprints 0x%016x, want 0x%016x — Checkpoint perturbed the session", name, got, wantTail)
	}

	resumed, err := parsurf.ResumeSession(spec, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%s: resume: %v", name, err)
	}
	if got := resumed.Engine().Steps(); got != stepsAtCP {
		t.Errorf("%s: resumed at step %d, checkpoint was taken at %d", name, got, stepsAtCP)
	}
	if got := resumed.Engine().Time(); got != timeAtCP {
		t.Errorf("%s: resumed clock %v, checkpoint was taken at %v", name, got, timeAtCP)
	}
	if got := goldentrace.Fingerprint(resumed.Engine(), m); got != wantTail {
		t.Errorf("%s: resumed trajectory fingerprints 0x%016x, want uninterrupted 0x%016x", name, got, wantTail)
	}
}

// Every registered engine checkpoints and resumes bit-exactly: N steps
// → Checkpoint → M steps reproduces an uninterrupted N+M trajectory.
func TestCheckpointResumeBitExactAllEngines(t *testing.T) {
	for _, name := range parsurf.Engines() {
		t.Run(name, func(t *testing.T) {
			checkCheckpointResume(t, checkpointSpec(t, name))
		})
	}
}

// The L-PNDCA chunk-selection strategies carry different amounts of
// cross-step state (cursor and permutation for the sweep orders, the
// incrementally-maintained Fenwick weights for "rates"); each must
// survive a checkpoint exactly.
func TestCheckpointResumeLPNDCAStrategies(t *testing.T) {
	for _, strategy := range []string{"order", "randomorder", "random", "rates"} {
		t.Run(strategy, func(t *testing.T) {
			checkCheckpointResume(t, checkpointSpec(t, "lpndca", parsurf.StrategyName(strategy)))
		})
	}
}

// rewriteCheckpoint decodes a checkpoint, lets mutate edit it, and
// re-encodes it, for forging mismatched checkpoints in guard tests.
func rewriteCheckpoint(t *testing.T, data []byte, mutate func(cp *persist.Checkpoint)) []byte {
	t.Helper()
	cp, err := persist.Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("reloading checkpoint: %v", err)
	}
	mutate(cp)
	var out bytes.Buffer
	if err := persist.Write(&out, cp); err != nil {
		t.Fatalf("rewriting checkpoint: %v", err)
	}
	return out.Bytes()
}

// ResumeSession refuses checkpoints that do not belong to the spec:
// wrong engine, wrong lattice, wrong species count, a different spec
// (hash mismatch), or an engine payload with trailing bytes.
func TestResumeSessionGuards(t *testing.T) {
	spec := checkpointSpec(t, "rsm")
	sess, err := spec.Session()
	if err != nil {
		t.Fatal(err)
	}
	goldentrace.Fingerprint(sess.Engine(), 10)
	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	expectErr := func(t *testing.T, spec *parsurf.SessionSpec, data []byte, want string) {
		t.Helper()
		_, err := parsurf.ResumeSession(spec, bytes.NewReader(data))
		if err == nil {
			t.Fatalf("resume accepted a checkpoint that should fail with %q", want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("resume error %q does not mention %q", err, want)
		}
	}

	t.Run("wrong engine", func(t *testing.T) {
		expectErr(t, checkpointSpec(t, "vssm"), good, "engine")
	})
	t.Run("wrong lattice", func(t *testing.T) {
		other, err := parsurf.NewSpec(
			parsurf.WithModelPreset("zgb", nil),
			parsurf.WithLattice(goldentrace.Side+10, goldentrace.Side+10),
			parsurf.WithEngine("rsm"),
			parsurf.WithSeed(goldentrace.Seed))
		if err != nil {
			t.Fatal(err)
		}
		// Forge matching engine+hash so the extent guard is what trips.
		forged := rewriteCheckpoint(t, good, func(cp *persist.Checkpoint) { cp.SpecHash = other.Hash() })
		expectErr(t, other, forged, "lattice")
	})
	t.Run("different spec hash", func(t *testing.T) {
		other, err := parsurf.NewSpec(
			parsurf.WithModelPreset("zgb", nil),
			parsurf.WithLattice(goldentrace.Side, goldentrace.Side),
			parsurf.WithEngine("rsm"),
			parsurf.WithSeed(goldentrace.Seed+1))
		if err != nil {
			t.Fatal(err)
		}
		expectErr(t, other, good, "hash")
	})
	t.Run("wrong species count", func(t *testing.T) {
		forged := rewriteCheckpoint(t, good, func(cp *persist.Checkpoint) {
			cp.NumSpecies = 7
			cp.SpecHash = "" // keep the species guard, not the hash guard, in play
		})
		expectErr(t, spec, forged, "species")
	})
	t.Run("trailing payload bytes", func(t *testing.T) {
		forged := rewriteCheckpoint(t, good, func(cp *persist.Checkpoint) {
			cp.Payload = append(append([]byte(nil), cp.Payload...), 0xab)
		})
		expectErr(t, spec, forged, "trailing")
	})
}
