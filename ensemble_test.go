package parsurf_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"parsurf"
	"parsurf/internal/stats"
	"parsurf/internal/ziff"
)

// The ROADMAP grid-truncation bug, fixed: for until=1.0, every=0.1 the
// Mean/Std grid has exactly 11 points, every point is the index-derived
// i·0.1 (1.0 at the end), and the replica coverage series sample on the
// very same grid — alignment is exact, no interpolation anywhere.
func TestEnsembleGridAlignment(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	const replicas = 3
	ens, err := parsurf.RunEnsemble(context.Background(), spec, replicas, 2, 1.0, 0.1,
		parsurf.KeepReplicas())
	if err != nil {
		t.Fatal(err)
	}
	if ens.Grid.Len() != 11 {
		t.Fatalf("grid has %d points, want 11", ens.Grid.Len())
	}
	for sp, m := range ens.Mean {
		if m.Len() != 11 || ens.Std[sp].Len() != 11 {
			t.Fatalf("species %d: Mean/Std have %d/%d points, want 11", sp, m.Len(), ens.Std[sp].Len())
		}
	}
	for i := 0; i < 10; i++ {
		if want := float64(i) * 0.1; ens.Mean[0].T[i] != want {
			t.Errorf("Mean grid point %d is %v, want exactly %v", i, ens.Mean[0].T[i], want)
		}
	}
	if ens.Mean[0].T[10] != 1.0 {
		t.Errorf("final Mean grid point is %v, want exactly 1.0", ens.Mean[0].T[10])
	}
	// Exact alignment: replica sample times ARE the merge grid times.
	for r, rep := range ens.Replicas {
		for sp, cov := range rep.Coverage {
			if cov.Len() != 11 {
				t.Fatalf("replica %d species %d sampled %d points, want 11", r, sp, cov.Len())
			}
			for i := range cov.T {
				if cov.T[i] != ens.Mean[sp].T[i] {
					t.Fatalf("replica %d species %d sample time %d (%v) differs from merge grid (%v)",
						r, sp, i, cov.T[i], ens.Mean[sp].T[i])
				}
			}
		}
	}
	// And the merge is the plain per-point Welford over replica values —
	// no resampling in between.
	for sp := range ens.Mean {
		for i := range ens.Mean[sp].X {
			var w stats.Welford
			for _, rep := range ens.Replicas {
				w.Add(rep.Coverage[sp].X[i])
			}
			if ens.Mean[sp].X[i] != w.Mean() || ens.Std[sp].X[i] != w.Std() {
				t.Fatalf("species %d point %d: Mean/Std %v/%v, want the direct Welford %v/%v",
					sp, i, ens.Mean[sp].X[i], ens.Std[sp].X[i], w.Mean(), w.Std())
			}
		}
	}
}

// Replica trajectories AND the merged moments are bit-identical for
// every worker count: replicas stream in completion order but commit
// in index order. Run under -race in CI.
func TestEnsembleWorkerDeterminism(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	const replicas, until, every = 6, 5, 0.5
	var ref *parsurf.Ensemble
	for _, workers := range []int{1, 4, replicas} {
		ens, err := parsurf.RunEnsemble(context.Background(), spec, replicas, workers, until, every,
			parsurf.KeepReplicas())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = ens
			continue
		}
		if !seriesEqual(ref.Mean, ens.Mean) || !seriesEqual(ref.Std, ens.Std) {
			t.Fatalf("Mean/Std differ between 1 and %d workers", workers)
		}
		for i := range ens.Replicas {
			if !seriesEqual(ref.Replicas[i].Coverage, ens.Replicas[i].Coverage) {
				t.Fatalf("replica %d trajectory differs between 1 and %d workers", i, workers)
			}
		}
	}
}

// Without KeepReplicas the runner streams: no members are retained,
// only the merged moments come back.
func TestEnsembleStreamsByDefault(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	ens, err := parsurf.RunEnsemble(context.Background(), spec, 4, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Replicas != nil {
		t.Fatalf("replicas retained without KeepReplicas: %d", len(ens.Replicas))
	}
	if len(ens.Mean) != spec.NumSpecies() || len(ens.Std) != spec.NumSpecies() {
		t.Fatalf("got %d/%d Mean/Std series, want %d", len(ens.Mean), len(ens.Std), spec.NumSpecies())
	}
	if ens.Mean[0].Len() != ens.Grid.Len() {
		t.Fatalf("Mean has %d points, grid has %d", ens.Mean[0].Len(), ens.Grid.Len())
	}
}

// An absorbed replica (y=1 CO-poisons almost immediately) holds its
// frozen coverage for every remaining grid point, so the merge gets
// exact values on the full grid from every member.
func TestEnsembleAbsorbedReplicaFillsGrid(t *testing.T) {
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(16, 16),
		parsurf.WithEngine("ziff", parsurf.COFraction(1.0)),
		parsurf.WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := parsurf.RunEnsemble(context.Background(), spec, 3, 2, 50, 1, parsurf.KeepReplicas())
	if err != nil {
		t.Fatal(err)
	}
	co := int(ziff.CO)
	if got := ens.Mean[co].Len(); got != 51 {
		t.Fatalf("Mean has %d points, want 51", got)
	}
	if last := ens.Mean[co].X[50]; last != 1.0 {
		t.Fatalf("mean CO coverage at the horizon is %v, want 1.0 (all replicas poisoned)", last)
	}
	for r, rep := range ens.Replicas {
		if !rep.Session.Engine().(*parsurf.ZiffZGB).Poisoned() {
			t.Fatalf("replica %d not poisoned at y=1", r)
		}
		if rep.Coverage[co].Len() != 51 {
			t.Fatalf("replica %d coverage has %d points, want the full grid", r, rep.Coverage[co].Len())
		}
	}
}

// ObserveReplicas fires at every grid point with the replica's live
// session, on the replica's goroutine.
func TestEnsembleObserveReplicas(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	const replicas, until, every = 3, 5, 1
	var calls atomic.Int64
	finalCO2 := make([]uint64, replicas)
	ens, err := parsurf.RunEnsemble(context.Background(), spec, replicas, 2, until, every,
		parsurf.ObserveReplicas(func(variant, replica int, tm float64, sess *parsurf.Session) {
			if variant != 0 {
				t.Errorf("RunEnsemble observer saw variant %d", variant)
			}
			calls.Add(1)
			finalCO2[replica] = sess.Engine().(*parsurf.ZiffZGB).CO2Count()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(replicas * ens.Grid.Len()); calls.Load() != want {
		t.Fatalf("observer fired %d times, want %d", calls.Load(), want)
	}
	for r, c := range finalCO2 {
		if c == 0 {
			t.Errorf("replica %d produced no CO2 in the reactive window", r)
		}
	}
}

// The ROADMAP no-sibling-cancel bug, fixed at the facade: the failing
// variant's replica-build error aborts the healthy replicas (which
// would otherwise run to an effectively infinite horizon) and is
// returned as-is — not as an induced context.Canceled. The bad variant
// passes spec validation (option resolution is engine-independent) but
// its engine construction fails per replica: 20 rows cannot host 12
// DDRSM strips.
func TestSweepFirstErrorCancelsSiblings(t *testing.T) {
	bad, err := parsurf.NewSpec(
		parsurf.WithModel(parsurf.NewZGBModel(parsurf.DefaultZGBRates())),
		parsurf.WithLattice(20, 20),
		parsurf.WithEngine("ddrsm", parsurf.Workers(12)),
	)
	if err != nil {
		t.Fatal(err)
	}
	healthy := zgbEnsembleSpec(t)
	// The bad variant fails while the healthy replica is mid-run toward
	// t=1e9; only prompt sibling cancellation lets this test finish.
	_, err = parsurf.RunSweep(context.Background(),
		[]*parsurf.SessionSpec{bad, healthy}, 1, 2, 1e9, 1e6)
	if err == nil {
		t.Fatal("sweep with a failing variant returned nil error")
	}
	if !strings.Contains(err.Error(), "cannot host") {
		t.Fatalf("sweep returned %v, want the root-cause strip-count build error", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("sweep reported an induced cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "variant 0") {
		t.Errorf("error %q does not name the failing variant", err)
	}
}

// Caller cancellation still surfaces as context.Canceled.
func TestEnsembleParentCancellation(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := parsurf.RunEnsemble(ctx, spec, 4, 2, 10, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunEnsemble returned %v, want context.Canceled", err)
	}
}

// A sweep runs one independent ensemble per variant: different y
// values give different coverages, every variant merges on the shared
// grid, and each variant's replicas reproduce what a standalone
// RunEnsemble of that spec computes.
func TestSweepMatchesStandaloneEnsembles(t *testing.T) {
	ys := []float64{0.45, 0.55}
	specs := make([]*parsurf.SessionSpec, len(ys))
	for i, y := range ys {
		spec, err := parsurf.NewSpec(
			parsurf.WithLattice(24, 24),
			parsurf.WithEngine("ziff", parsurf.COFraction(y)),
			parsurf.WithSeed(42+uint64(i)),
		)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = spec
	}
	const replicas, until, every = 3, 5, 1
	swept, err := parsurf.RunSweep(context.Background(), specs, replicas, 3, until, every)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != len(ys) {
		t.Fatalf("sweep returned %d ensembles for %d specs", len(swept), len(ys))
	}
	if seriesEqual(swept[0].Mean, swept[1].Mean) {
		t.Error("different y variants produced identical means")
	}
	for v := range specs {
		solo, err := parsurf.RunEnsemble(context.Background(), specs[v], replicas, 2, until, every)
		if err != nil {
			t.Fatal(err)
		}
		if !seriesEqual(solo.Mean, swept[v].Mean) || !seriesEqual(solo.Std, swept[v].Std) {
			t.Errorf("variant %d: sweep result differs from standalone RunEnsemble", v)
		}
	}
}

// Validation errors for the sweep entry point.
// RunReplicaRange is the fleet shard primitive: a slice [lo, hi) of the
// replica space must reproduce, bit for bit, the rows the same replicas
// record inside a full single-node ensemble — whatever worker count runs
// the shard.
func TestRunReplicaRangeMatchesEnsemble(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	const replicas = 6
	ens, err := parsurf.RunEnsemble(context.Background(), spec, replicas, 2, 1.0, 0.1,
		parsurf.KeepReplicas())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		rows, err := parsurf.RunReplicaRange(context.Background(), spec, 0, 2, 5, workers, 1.0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("range [2,5) returned %d replicas, want 3", len(rows))
		}
		for k, row := range rows {
			rep := ens.Replicas[2+k]
			if len(row) != len(rep.Coverage) {
				t.Fatalf("replica %d: %d species rows, want %d", 2+k, len(row), len(rep.Coverage))
			}
			for sp := range row {
				for p, x := range row[sp] {
					if x != rep.Coverage[sp].X[p] {
						t.Fatalf("workers=%d replica %d species %d point %d: shard %v, ensemble %v",
							workers, 2+k, sp, p, x, rep.Coverage[sp].X[p])
					}
				}
			}
		}
	}
}

func TestRunReplicaRangeValidation(t *testing.T) {
	spec := zgbEnsembleSpec(t)
	ctx := context.Background()
	if _, err := parsurf.RunReplicaRange(ctx, nil, 0, 0, 1, 1, 1.0, 0.1); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := parsurf.RunReplicaRange(ctx, spec, 0, 3, 3, 1, 1.0, 0.1); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := parsurf.RunReplicaRange(ctx, spec, 0, -1, 2, 1, 1.0, 0.1); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := parsurf.RunReplicaRange(ctx, spec, 0, 0, 1, 1, 0, 0.1); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestSweepValidation(t *testing.T) {
	ctx := context.Background()
	spec := zgbEnsembleSpec(t)
	cases := []struct {
		name string
		run  func() error
	}{
		{"no specs", func() error {
			_, err := parsurf.RunSweep(ctx, nil, 1, 1, 1, 1)
			return err
		}},
		{"nil spec", func() error {
			_, err := parsurf.RunSweep(ctx, []*parsurf.SessionSpec{spec, nil}, 1, 1, 1, 1)
			return err
		}},
		{"zero replicas", func() error {
			_, err := parsurf.RunSweep(ctx, []*parsurf.SessionSpec{spec}, 0, 1, 1, 1)
			return err
		}},
		{"degenerate grid", func() error {
			_, err := parsurf.RunSweep(ctx, []*parsurf.SessionSpec{spec}, 1, 1, 1, 0)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// The facade TimeGrid constructor mirrors the internal one.
func TestNewTimeGridFacade(t *testing.T) {
	g, err := parsurf.NewTimeGrid(1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 11 || g.At(10) != 1.0 {
		t.Fatalf("facade grid: %d points ending at %v", g.Len(), g.At(g.Len()-1))
	}
	if _, err := parsurf.NewTimeGrid(0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
}
