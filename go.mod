module parsurf

go 1.24
