package parsurf_test

import (
	"bytes"
	"strings"
	"testing"

	"parsurf"
)

func TestFacadeObserversAndCheckpoint(t *testing.T) {
	lat := parsurf.NewSquareLattice(16)
	m := parsurf.NewZGBModel(parsurf.DefaultZGBRates())
	cm := parsurf.MustCompile(m, lat)
	cfg := parsurf.NewConfig(lat)
	src := parsurf.NewRNG(1)
	rsm := parsurf.NewRSM(cm, cfg, src)

	cov := parsurf.NewCoverageObserver(0, 1, 2)
	snap := parsurf.NewSnapshotObserver(1)
	n := parsurf.NewRunner(rsm, 0.5).Attach(cov, snap).Run(5)
	if n == 0 || cov.Series[0].Len() != n || len(snap.Snapshots) != n {
		t.Fatal("observers missed samples")
	}

	var buf bytes.Buffer
	if err := parsurf.SaveCheckpoint(&buf, cfg, src, rsm.Time()); err != nil {
		t.Fatal(err)
	}
	cp, err := parsurf.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Config.Equal(cfg) || cp.Time != rsm.Time() {
		t.Fatal("checkpoint round trip lost state")
	}
	// Resume on the restored state.
	resumed := parsurf.NewRSM(cm, cp.Config, cp.RNG)
	resumed.Step()
}

func TestFacadeModelFile(t *testing.T) {
	text := "species * A\nreaction ads 1 (0,0): * -> A\n"
	m, err := parsurf.ParseModel(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := parsurf.FormatModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := parsurf.ParseModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Types) != 1 || back.Species[1] != "A" {
		t.Fatal("model file round trip failed")
	}
}

func TestFacadeClustersAndOscillation(t *testing.T) {
	lat := parsurf.NewSquareLattice(10)
	cfg := parsurf.NewConfig(lat)
	cfg.SetXY(1, 1, 1)
	cfg.SetXY(1, 2, 1)
	cfg.SetXY(5, 5, 1)
	st := parsurf.Clusters(cfg, 1)
	if st.Clusters != 2 || st.Largest != 2 {
		t.Fatalf("cluster stats %+v", st)
	}

	s := &parsurf.Series{}
	for i := 0; i <= 1000; i++ {
		tt := float64(i) * 0.1
		s.Append(tt, osc(tt))
	}
	if _, ok := parsurf.DetectOscillation(s, 512, 0.2); !ok {
		t.Fatal("oscillation missed")
	}
}

func TestFacadeZiffDesorptionAndSVG(t *testing.T) {
	z := parsurf.NewZiffWithDesorption(parsurf.NewSquareLattice(12), parsurf.NewRNG(2), 0.6, 0.05)
	for i := 0; i < 50; i++ {
		z.Step()
	}
	if z.Config().Count(0) == 0 && z.Config().Count(2) == 0 {
		t.Fatal("desorbing ZGB froze")
	}

	s := &parsurf.Series{}
	s.Append(0, 0)
	s.Append(1, 1)
	var buf bytes.Buffer
	if err := parsurf.WriteSVG(&buf, "demo", []string{"x"}, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG output")
	}
}

func TestFacadeArrhenius(t *testing.T) {
	if k := parsurf.Arrhenius(2, 0, 300); k != 2 {
		t.Fatalf("zero activation energy: %v", k)
	}
}

func TestFacadeSteadyState(t *testing.T) {
	ss := parsurf.NewSteadyState(3, 0.01)
	for i := 0; i < 5; i++ {
		ss.Add(float64(i))
	}
	steady := false
	for i := 0; i < 8; i++ {
		steady = ss.Add(5) || steady
	}
	if !steady {
		t.Fatal("plateau missed")
	}
}
