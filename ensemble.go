package parsurf

import (
	"context"
	"fmt"
	"sync"

	"parsurf/internal/rng"
	"parsurf/internal/sim"
	"parsurf/internal/stats"
)

// Replica is the outcome of one ensemble member: its final session
// state and the per-species coverage series it recorded.
type Replica struct {
	// Session is the replica's session after the run (final
	// configuration, engine counters).
	Session *Session
	// Coverage holds one series per species, indexed like the model's
	// species domain.
	Coverage []*Series
	// Stats summarises the replica's run.
	Stats RunStats
}

// Ensemble is the merged outcome of RunEnsemble.
type Ensemble struct {
	// Replicas are the members in replica order (independent of the
	// worker count).
	Replicas []*Replica
	// Mean and Std are the per-species pointwise mean and sample
	// standard deviation across replicas, on a uniform time grid.
	Mean []*Series
	Std  []*Series
}

// replicaStreamID derives replica i's engine stream from the spec seed.
// Offset by one so replica streams never collide with Split(0) children
// a user might derive from the same seed.
func replicaStreamID(i int) uint64 { return uint64(i) + 1 }

// RunEnsemble runs independent replicas of the spec'd simulation and
// merges their coverage series. Replica i draws from the split stream
// NewRNG(seed).Split(i+1), so the members are statistically independent
// yet fully deterministic: the results are bit-identical for every
// workers value, and workers only sets the number of goroutines running
// replicas concurrently (use runtime.NumCPU() for wall-clock speedup on
// sweeps). Every replica samples all species' coverages every `every`
// time units until `until`; the merged Mean/Std series live on a
// uniform grid over [0, until].
//
// The first replica error (including context cancellation) aborts the
// run.
func RunEnsemble(ctx context.Context, spec *SessionSpec, replicas, workers int, until, every float64) (*Ensemble, error) {
	if spec == nil {
		return nil, fmt.Errorf("parsurf: RunEnsemble needs a spec")
	}
	if replicas < 1 {
		return nil, fmt.Errorf("parsurf: RunEnsemble needs at least one replica, got %d", replicas)
	}
	if until <= 0 || every <= 0 {
		return nil, fmt.Errorf("parsurf: RunEnsemble needs positive until and every, got %v and %v", until, every)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > replicas {
		workers = replicas
	}

	ens := &Ensemble{Replicas: make([]*Replica, replicas)}
	errs := make([]error, replicas)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ens.Replicas[i], errs[i] = runReplica(ctx, spec, i, until, every)
			}
		}()
	}
	for i := 0; i < replicas; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge: per species, aggregate the replica series onto the common
	// grid. Grid resolution matches the sampling schedule.
	numSpecies := ens.Replicas[0].Session.NumSpecies()
	n := int(until/every) + 1
	if n < 2 {
		n = 2
	}
	ens.Mean = make([]*Series, numSpecies)
	ens.Std = make([]*Series, numSpecies)
	group := make([]*Series, replicas)
	for sp := 0; sp < numSpecies; sp++ {
		for i, r := range ens.Replicas {
			group[i] = r.Coverage[sp]
		}
		ens.Mean[sp], ens.Std[sp] = stats.Aggregate(group, 0, until, n)
	}
	return ens, nil
}

// runReplica builds and runs ensemble member i.
func runReplica(ctx context.Context, spec *SessionSpec, i int, until, every float64) (*Replica, error) {
	sess, err := spec.build(rng.New(spec.seed).Split(replicaStreamID(i)))
	if err != nil {
		return nil, fmt.Errorf("parsurf: replica %d: %w", i, err)
	}
	numSpecies := sess.NumSpecies()
	coverage := make([]*Series, numSpecies)
	for sp := range coverage {
		coverage[sp] = &Series{}
	}
	obs := sim.ObserverFunc(func(t float64, cfg *Config) {
		counts := cfg.CountAll(numSpecies)
		n := float64(sess.Lattice().N())
		for sp := range coverage {
			coverage[sp].Append(t, float64(counts[sp])/n)
		}
	})
	st, err := sess.Run(ctx, Until(until), SampleEvery(every, obs))
	if err != nil {
		return nil, fmt.Errorf("parsurf: replica %d: %w", i, err)
	}
	return &Replica{Session: sess, Coverage: coverage, Stats: st}, nil
}
