package parsurf

import (
	"context"
	"fmt"
	"sync"

	"parsurf/internal/ensemble"
	"parsurf/internal/rng"
	"parsurf/internal/sim"
)

// TimeGrid is the shared sampling-and-merge grid of the ensemble
// runner: the points 0, every, 2·every, … up to `until`, plus a tail
// point at exactly `until` when the horizon is off the step lattice.
// Points are derived from their index (i·every, never an accumulated
// sum), and replicas sample on the very grid the merge aggregates, so
// the Mean/Std series and every replica's coverage series always share
// the same exact float64 time points — no interpolation, no
// truncated-grid misalignment.
type TimeGrid = ensemble.TimeGrid

// NewTimeGrid returns the grid RunEnsemble and RunSweep use for the
// given horizon and sampling interval.
func NewTimeGrid(until, every float64) (TimeGrid, error) {
	return ensemble.NewTimeGrid(until, every)
}

// Replica is the outcome of one ensemble member, retained only when
// KeepReplicas is passed: its final session state and the per-species
// coverage series it recorded on the ensemble grid.
type Replica struct {
	// Session is the replica's session after the run (final
	// configuration, engine counters).
	Session *Session
	// Coverage holds one series per species, indexed like the model's
	// species domain, sampled exactly at the ensemble TimeGrid points.
	// A replica that hit an absorbing state holds its frozen coverage
	// for every remaining grid point.
	Coverage []*Series
	// Stats summarises the replica's run.
	Stats RunStats
}

// Ensemble is the merged outcome of RunEnsemble (or one variant of
// RunSweep).
type Ensemble struct {
	// Grid is the time grid every replica sampled on and Mean/Std are
	// defined over.
	Grid TimeGrid
	// Replicas are the members in replica order (independent of the
	// worker count). Nil unless KeepReplicas was passed: by default
	// replicas stream through the merge and only the O(species × grid)
	// moments are retained.
	Replicas []*Replica
	// Mean and Std are the per-species pointwise mean and sample
	// standard deviation across replicas, on the Grid points.
	Mean []*Series
	Std  []*Series
}

// ReplicaObserver is a per-replica hook invoked at every grid point,
// on the replica's worker goroutine, with the replica's live session —
// variant is the spec index of a RunSweep (always 0 for RunEnsemble).
// Calls for one replica arrive in grid order from a single goroutine;
// calls for different replicas are concurrent, so observers must only
// write to replica-local state (e.g. an element of a pre-sized slice).
// For a replica frozen in an absorbing state the hook still fires at
// every remaining grid point with the final state.
type ReplicaObserver func(variant, replica int, t float64, sess *Session)

// ReplicaCheckpoint is a per-replica checkpoint hook invoked on the
// replica's worker goroutine after each grid point is recorded: k is
// the grid index just sampled, sess the live session (safe to
// Checkpoint — taking a snapshot draws no randomness), and values the
// replica's sample matrix (species × grid points) with columns 0..k
// filled. The hook decides when a snapshot is actually worth taking
// (e.g. rate-limiting by wall clock); returning without doing anything
// costs nothing. Like ReplicaObserver, calls for different replicas are
// concurrent.
type ReplicaCheckpoint func(variant, replica, k int, sess *Session, values [][]float64)

// ReplicaResume is consulted once per replica before it runs. Returning
// ok=true hands the runner a session restored mid-trajectory plus the
// already-recorded sample rows: the replica continues from grid index
// nextK (rows must hold at least nextK samples per species) instead of
// running from scratch. Returning ok=false runs the replica normally.
// Replica observers do not re-fire for the skipped points.
type ReplicaResume func(variant, replica int) (sess *Session, nextK int, rows [][]float64, ok bool)

// EnsembleOption configures RunEnsemble / RunSweep.
type EnsembleOption func(*ensembleConfig)

type ensembleConfig struct {
	keep       bool
	observers  []ReplicaObserver
	checkpoint ReplicaCheckpoint
	resume     ReplicaResume
}

// KeepReplicas retains every replica's session and coverage series on
// the Ensemble. Without it the runner streams: each replica's samples
// merge into the running moments and the replica is released, keeping
// memory O(species × grid) regardless of the replica count.
func KeepReplicas() EnsembleOption {
	return func(c *ensembleConfig) { c.keep = true }
}

// ObserveReplicas registers a per-replica observer (see
// ReplicaObserver) — the streaming-friendly way to extract
// engine-specific measurements (reaction counters, poisoning flags)
// without retaining whole replicas.
func ObserveReplicas(obs ReplicaObserver) EnsembleOption {
	return func(c *ensembleConfig) { c.observers = append(c.observers, obs) }
}

// CheckpointReplicas registers the per-replica checkpoint hook (see
// ReplicaCheckpoint). At most one hook is active; later options win.
func CheckpointReplicas(fn ReplicaCheckpoint) EnsembleOption {
	return func(c *ensembleConfig) { c.checkpoint = fn }
}

// ResumeReplicas registers the per-replica resume provider (see
// ReplicaResume). The provider is only consulted on the streaming
// (default) path; under KeepReplicas every member runs from scratch,
// which is slower but produces identical results. At most one provider
// is active; later options win.
func ResumeReplicas(fn ReplicaResume) EnsembleOption {
	return func(c *ensembleConfig) { c.resume = fn }
}

// replicaStreamID derives replica i's engine stream from the spec seed.
// Offset by one so replica streams never collide with Split(0) children
// a user might derive from the same seed.
func replicaStreamID(i int) uint64 { return uint64(i) + 1 }

// replicaSlot is one pooled replica context: a reusable session (built
// once, rewound with Session.Reset for every subsequent replica index
// it runs), the stable storage of its engine stream, and the
// occupancy-count scratch of the grid sampler. Which slot runs which
// replica index is irrelevant to the result: the trajectory is a
// function of (spec, replica stream) only, by the Reset contract.
type replicaSlot struct {
	sess   *Session
	stream RNG
	counts []int
}

// slotPool hands replica slots to the ensemble workers. A plain
// locked free list (not sync.Pool): slots must survive GC cycles for
// the whole run, and the pool never outlives its RunSweep call. At
// most `workers` slots exist per variant.
type slotPool struct {
	mu   sync.Mutex
	free []*replicaSlot
}

func (p *slotPool) get() *replicaSlot {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return &replicaSlot{}
}

func (p *slotPool) put(s *replicaSlot) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// valuesPool recycles the per-replica sample grids (species × grid
// points) of the streaming merge. Buffers return through the
// accumulator's release hook once their replica has committed, so at
// most window+workers grids are live per variant regardless of the
// replica count.
type valuesPool struct {
	mu     sync.Mutex
	vars   int
	points int
	free   [][][]float64
}

func (p *valuesPool) get() [][]float64 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	values := make([][]float64, p.vars)
	for sp := range values {
		values[sp] = make([]float64, p.points)
	}
	return values
}

func (p *valuesPool) put(v [][]float64) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

// RunEnsemble runs independent replicas of the spec'd simulation and
// merges their coverage series. Replica i draws from the split stream
// NewRNG(seed).Split(i+1), so the members are statistically independent
// yet fully deterministic: replica trajectories AND the merged Mean/Std
// are bit-identical for every workers value (replicas merge in index
// order no matter when they finish), and workers only sets the number
// of goroutines running replicas concurrently (use runtime.NumCPU()
// for wall-clock speedup on sweeps). Every replica samples all
// species' coverages exactly at the TimeGrid points over [0, until];
// the merged Mean/Std series live on that same grid.
//
// The first replica failure cancels all sibling replicas (they abort
// within one engine step) and is returned as-is; siblings' induced
// context.Canceled errors are never reported in its place.
func RunEnsemble(ctx context.Context, spec *SessionSpec, replicas, workers int, until, every float64, opts ...EnsembleOption) (*Ensemble, error) {
	if spec == nil {
		return nil, fmt.Errorf("parsurf: RunEnsemble needs a spec")
	}
	out, err := RunSweep(ctx, []*SessionSpec{spec}, replicas, workers, until, every, opts...)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RunSweep runs one ensemble per spec variant — e.g. a y_CO grid for a
// phase diagram — over a single worker pool spanning every
// (variant, replica) job, so a whole parameter sweep parallelises as
// one flat job set with no per-variant barrier. Each variant's
// replicas draw from that variant spec's seed exactly as RunEnsemble's
// do, and each variant merges on the shared TimeGrid; results are
// bit-identical for every workers value. The first failure anywhere
// cancels every remaining job, and the returned error is that
// failure, not an induced cancellation.
func RunSweep(ctx context.Context, specs []*SessionSpec, replicas, workers int, until, every float64, opts ...EnsembleOption) ([]*Ensemble, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("parsurf: sweep needs at least one spec")
	}
	for v, spec := range specs {
		if spec == nil {
			return nil, fmt.Errorf("parsurf: sweep variant %d is a nil spec", v)
		}
	}
	if replicas < 1 {
		return nil, fmt.Errorf("parsurf: ensemble needs at least one replica, got %d", replicas)
	}
	if until <= 0 || every <= 0 {
		return nil, fmt.Errorf("parsurf: ensemble needs positive until and every, got %v and %v", until, every)
	}
	var cfg ensembleConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	grid, err := ensemble.NewTimeGrid(until, every)
	if err != nil {
		return nil, fmt.Errorf("parsurf: %w", err)
	}

	out := make([]*Ensemble, len(specs))
	accs := make([]*ensemble.Accumulator, len(specs))
	slots := make([]*slotPool, len(specs))
	bufs := make([]*valuesPool, len(specs))
	for v, spec := range specs {
		out[v] = &Ensemble{Grid: grid}
		if cfg.keep {
			out[v].Replicas = make([]*Replica, replicas)
		}
		// The reorder window bounds the streaming buffer at roughly the
		// worker count even when one early replica far outlives its
		// siblings.
		accs[v] = ensemble.NewAccumulator(spec.NumSpecies(), grid.Len(), workers)
		if !cfg.keep {
			// Streaming mode pools both the sessions (built once per
			// worker, rewound with Reset per replica) and the sample
			// grids (released by the accumulator once a replica
			// commits). KeepReplicas retains sessions and series on the
			// result, so nothing can be recycled there.
			slots[v] = &slotPool{}
			pool := &valuesPool{vars: spec.NumSpecies(), points: grid.Len()}
			bufs[v] = pool
			accs[v].SetRelease(pool.put)
		}
	}
	times := grid.Times() // one shared copy: Mean/Std/replica series all point at it
	err = ensemble.Run(ctx, len(specs)*replicas, workers, func(ctx context.Context, job int) error {
		v, i := job/replicas, job%replicas
		var (
			rep    *Replica
			values [][]float64
			err    error
		)
		if cfg.keep {
			rep, values, err = runReplicaFresh(ctx, specs[v], v, i, grid, times, &cfg)
		} else if sess, k0, rows, ok := resumeFor(&cfg, v, i); ok {
			values, err = runReplicaResumed(ctx, specs[v], v, i, grid, k0, sess, rows, bufs[v], &cfg)
		} else {
			values, err = runReplicaPooled(ctx, specs[v], v, i, grid, slots[v], bufs[v], &cfg)
		}
		if err == nil {
			err = accs[v].Add(ctx, i, values)
		}
		if err != nil {
			if len(specs) > 1 {
				return fmt.Errorf("parsurf: sweep variant %d replica %d: %w", v, i, err)
			}
			return fmt.Errorf("parsurf: replica %d: %w", i, err)
		}
		if cfg.keep {
			out[v].Replicas[i] = rep
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for v := range out {
		mean, std := accs[v].MeanStd()
		out[v].Mean = seriesOnGrid(times, mean)
		out[v].Std = seriesOnGrid(times, std)
	}
	return out, nil
}

// RunReplicaRange runs replicas lo..hi-1 of one sweep variant — the
// shard primitive of fleet mode. Each replica i draws exactly the
// stream a full RunEnsemble would hand it (NewRNG(seed).Split(i+1)) and
// samples on the same TimeGrid, so the rows it produces are
// bit-identical to the rows the same replica produces inside a
// single-node run: a coordinator that commits shard rows in
// replica-index order merges a fleet run to the exact floats of a local
// one, regardless of how the replica space was sliced.
//
// The returned rows are indexed i-lo, each a species × grid-points
// matrix. Sessions pool through the zero-rebuild Reset path (one build
// per worker, Reset per subsequent replica), and the
// Observe/Checkpoint/Resume options apply with the given variant index
// and absolute replica indices, so mid-shard snapshots interoperate
// with the single-node checkpoint machinery.
func RunReplicaRange(ctx context.Context, spec *SessionSpec, variant, lo, hi, workers int, until, every float64, opts ...EnsembleOption) ([][][]float64, error) {
	if spec == nil {
		return nil, fmt.Errorf("parsurf: RunReplicaRange needs a spec")
	}
	if lo < 0 || hi <= lo {
		return nil, fmt.Errorf("parsurf: replica range [%d, %d) is empty or negative", lo, hi)
	}
	if until <= 0 || every <= 0 {
		return nil, fmt.Errorf("parsurf: ensemble needs positive until and every, got %v and %v", until, every)
	}
	var cfg ensembleConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	grid, err := ensemble.NewTimeGrid(until, every)
	if err != nil {
		return nil, fmt.Errorf("parsurf: %w", err)
	}
	slots := &slotPool{}
	// Every row survives on the result, so the pool only amortizes the
	// error paths; nothing is released back mid-run.
	bufs := &valuesPool{vars: spec.NumSpecies(), points: grid.Len()}
	rows := make([][][]float64, hi-lo)
	err = ensemble.Run(ctx, hi-lo, workers, func(ctx context.Context, k int) error {
		i := lo + k
		var (
			values [][]float64
			err    error
		)
		if sess, k0, prev, ok := resumeFor(&cfg, variant, i); ok {
			values, err = runReplicaResumed(ctx, spec, variant, i, grid, k0, sess, prev, bufs, &cfg)
		} else {
			values, err = runReplicaPooled(ctx, spec, variant, i, grid, slots, bufs, &cfg)
		}
		if err != nil {
			return fmt.Errorf("parsurf: replica %d: %w", i, err)
		}
		rows[k] = values
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// seriesOnGrid wraps per-species sample rows and their shared grid
// times as Series values.
func seriesOnGrid(times []float64, rows [][]float64) []*Series {
	out := make([]*Series, len(rows))
	for i, row := range rows {
		out[i] = &Series{T: times, X: row}
	}
	return out
}

// sampleOnGrid runs the session through the grid, recording per-species
// coverages into values (species × grid points, fully overwritten) and
// firing the replica observers. counts is the occupancy scratch; the
// possibly-grown slice is returned for reuse.
func sampleOnGrid(ctx context.Context, sess *Session, variant, i int, grid TimeGrid, values [][]float64, counts []int, cfg *ensembleConfig) (scratch []int, steps int, err error) {
	return sampleOnGridFrom(ctx, sess, variant, i, grid, 0, values, counts, cfg)
}

// sampleOnGridFrom is sampleOnGrid starting at grid index k0 — the
// resume path, where columns before k0 were recorded by the interrupted
// run and arrive pre-filled.
func sampleOnGridFrom(ctx context.Context, sess *Session, variant, i int, grid TimeGrid, k0 int, values [][]float64, counts []int, cfg *ensembleConfig) (scratch []int, steps int, err error) {
	n := float64(sess.Lattice().N())
	steps, err = sim.RunGridFrom(ctx, sess.Engine(), grid, k0, func(k int, c *Config) {
		counts = c.CountInto(counts)
		for sp := range values {
			values[sp][k] = float64(counts[sp]) / n
		}
		for _, obs := range cfg.observers {
			obs(variant, i, grid.At(k), sess)
		}
		if cfg.checkpoint != nil {
			cfg.checkpoint(variant, i, k, sess, values)
		}
	})
	return counts, steps, err
}

// resumeFor consults the resume provider, if any.
func resumeFor(cfg *ensembleConfig, variant, i int) (*Session, int, [][]float64, bool) {
	if cfg.resume == nil {
		return nil, 0, nil, false
	}
	return cfg.resume(variant, i)
}

// runReplicaResumed continues ensemble member i from a checkpoint: the
// provider's session is already positioned mid-trajectory, the recorded
// rows pre-fill the sample matrix up to (excluding) grid index k0, and
// sampling continues from k0. The session is not pooled — it was built
// by the provider, and a resumed replica is a one-off.
func runReplicaResumed(ctx context.Context, spec *SessionSpec, variant, i int, grid TimeGrid, k0 int, sess *Session, rows [][]float64, bufs *valuesPool, cfg *ensembleConfig) ([][]float64, error) {
	if k0 < 0 || k0 > grid.Len() {
		return nil, fmt.Errorf("parsurf: resume index %d outside grid of %d points", k0, grid.Len())
	}
	if len(rows) != spec.NumSpecies() {
		return nil, fmt.Errorf("parsurf: resume rows cover %d species, spec has %d", len(rows), spec.NumSpecies())
	}
	values := bufs.get()
	for sp := range values {
		if len(rows[sp]) < k0 {
			bufs.put(values)
			return nil, fmt.Errorf("parsurf: resume rows hold %d samples, need %d", len(rows[sp]), k0)
		}
		copy(values[sp][:k0], rows[sp][:k0])
	}
	_, _, err := sampleOnGridFrom(ctx, sess, variant, i, grid, k0, values, make([]int, spec.NumSpecies()), cfg)
	if err != nil {
		bufs.put(values)
		return nil, err
	}
	return values, nil
}

// runReplicaFresh builds and runs ensemble member i of variant spec
// from scratch — the KeepReplicas path, where the session and coverage
// series survive on the result and cannot be recycled.
func runReplicaFresh(ctx context.Context, spec *SessionSpec, variant, i int, grid TimeGrid, times []float64, cfg *ensembleConfig) (*Replica, [][]float64, error) {
	sess, err := spec.build(rng.New(spec.seed).Split(replicaStreamID(i)))
	if err != nil {
		return nil, nil, err
	}
	numSpecies := sess.NumSpecies()
	values := make([][]float64, numSpecies)
	for sp := range values {
		values[sp] = make([]float64, grid.Len())
	}
	_, steps, err := sampleOnGrid(ctx, sess, variant, i, grid, values, make([]int, numSpecies), cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &Replica{
		Session:  sess,
		Coverage: seriesOnGrid(times, values),
		Stats:    RunStats{Steps: steps, Samples: grid.Len(), Time: sess.Engine().Time()},
	}
	return rep, values, nil
}

// runReplicaPooled runs ensemble member i through a pooled session:
// the first replica a slot serves pays the full session build, every
// later one only a Reset (configuration re-init plus engine rewind
// over the retained buffers). Replica i's stream is derived exactly as
// the fresh path derives it — NewRNG(seed).Split(i+1), rebuilt in
// place in the slot's stable storage — so pooled trajectories are
// bit-identical to fresh builds, whichever slot runs them.
func runReplicaPooled(ctx context.Context, spec *SessionSpec, variant, i int, grid TimeGrid, slots *slotPool, bufs *valuesPool, cfg *ensembleConfig) ([][]float64, error) {
	slot := slots.get()
	var root RNG
	root.Seed(spec.seed)
	root.SplitInto(&slot.stream, replicaStreamID(i))
	if slot.sess == nil {
		sess, err := spec.build(&slot.stream)
		if err != nil {
			return nil, err
		}
		slot.sess = sess
		slot.counts = make([]int, spec.NumSpecies())
	} else {
		slot.sess.Reset(&slot.stream)
	}
	values := bufs.get()
	counts, _, err := sampleOnGrid(ctx, slot.sess, variant, i, grid, values, slot.counts, cfg)
	slot.counts = counts
	if err != nil {
		// The slot is not returned: a failed or cancelled run leaves
		// the engine mid-trajectory, and the pool only holds sessions
		// that are safe to Reset. (They are safe either way, but a
		// failing run is about to cancel the whole sweep anyway.)
		return nil, err
	}
	slots.put(slot)
	return values, nil
}
