package parsurf

import (
	"context"
	"fmt"

	"parsurf/internal/ensemble"
	"parsurf/internal/rng"
	"parsurf/internal/sim"
)

// TimeGrid is the shared sampling-and-merge grid of the ensemble
// runner: the points 0, every, 2·every, … up to `until`, plus a tail
// point at exactly `until` when the horizon is off the step lattice.
// Points are derived from their index (i·every, never an accumulated
// sum), and replicas sample on the very grid the merge aggregates, so
// the Mean/Std series and every replica's coverage series always share
// the same exact float64 time points — no interpolation, no
// truncated-grid misalignment.
type TimeGrid = ensemble.TimeGrid

// NewTimeGrid returns the grid RunEnsemble and RunSweep use for the
// given horizon and sampling interval.
func NewTimeGrid(until, every float64) (TimeGrid, error) {
	return ensemble.NewTimeGrid(until, every)
}

// Replica is the outcome of one ensemble member, retained only when
// KeepReplicas is passed: its final session state and the per-species
// coverage series it recorded on the ensemble grid.
type Replica struct {
	// Session is the replica's session after the run (final
	// configuration, engine counters).
	Session *Session
	// Coverage holds one series per species, indexed like the model's
	// species domain, sampled exactly at the ensemble TimeGrid points.
	// A replica that hit an absorbing state holds its frozen coverage
	// for every remaining grid point.
	Coverage []*Series
	// Stats summarises the replica's run.
	Stats RunStats
}

// Ensemble is the merged outcome of RunEnsemble (or one variant of
// RunSweep).
type Ensemble struct {
	// Grid is the time grid every replica sampled on and Mean/Std are
	// defined over.
	Grid TimeGrid
	// Replicas are the members in replica order (independent of the
	// worker count). Nil unless KeepReplicas was passed: by default
	// replicas stream through the merge and only the O(species × grid)
	// moments are retained.
	Replicas []*Replica
	// Mean and Std are the per-species pointwise mean and sample
	// standard deviation across replicas, on the Grid points.
	Mean []*Series
	Std  []*Series
}

// ReplicaObserver is a per-replica hook invoked at every grid point,
// on the replica's worker goroutine, with the replica's live session —
// variant is the spec index of a RunSweep (always 0 for RunEnsemble).
// Calls for one replica arrive in grid order from a single goroutine;
// calls for different replicas are concurrent, so observers must only
// write to replica-local state (e.g. an element of a pre-sized slice).
// For a replica frozen in an absorbing state the hook still fires at
// every remaining grid point with the final state.
type ReplicaObserver func(variant, replica int, t float64, sess *Session)

// EnsembleOption configures RunEnsemble / RunSweep.
type EnsembleOption func(*ensembleConfig)

type ensembleConfig struct {
	keep      bool
	observers []ReplicaObserver
}

// KeepReplicas retains every replica's session and coverage series on
// the Ensemble. Without it the runner streams: each replica's samples
// merge into the running moments and the replica is released, keeping
// memory O(species × grid) regardless of the replica count.
func KeepReplicas() EnsembleOption {
	return func(c *ensembleConfig) { c.keep = true }
}

// ObserveReplicas registers a per-replica observer (see
// ReplicaObserver) — the streaming-friendly way to extract
// engine-specific measurements (reaction counters, poisoning flags)
// without retaining whole replicas.
func ObserveReplicas(obs ReplicaObserver) EnsembleOption {
	return func(c *ensembleConfig) { c.observers = append(c.observers, obs) }
}

// replicaStreamID derives replica i's engine stream from the spec seed.
// Offset by one so replica streams never collide with Split(0) children
// a user might derive from the same seed.
func replicaStreamID(i int) uint64 { return uint64(i) + 1 }

// RunEnsemble runs independent replicas of the spec'd simulation and
// merges their coverage series. Replica i draws from the split stream
// NewRNG(seed).Split(i+1), so the members are statistically independent
// yet fully deterministic: replica trajectories AND the merged Mean/Std
// are bit-identical for every workers value (replicas merge in index
// order no matter when they finish), and workers only sets the number
// of goroutines running replicas concurrently (use runtime.NumCPU()
// for wall-clock speedup on sweeps). Every replica samples all
// species' coverages exactly at the TimeGrid points over [0, until];
// the merged Mean/Std series live on that same grid.
//
// The first replica failure cancels all sibling replicas (they abort
// within one engine step) and is returned as-is; siblings' induced
// context.Canceled errors are never reported in its place.
func RunEnsemble(ctx context.Context, spec *SessionSpec, replicas, workers int, until, every float64, opts ...EnsembleOption) (*Ensemble, error) {
	if spec == nil {
		return nil, fmt.Errorf("parsurf: RunEnsemble needs a spec")
	}
	out, err := RunSweep(ctx, []*SessionSpec{spec}, replicas, workers, until, every, opts...)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RunSweep runs one ensemble per spec variant — e.g. a y_CO grid for a
// phase diagram — over a single worker pool spanning every
// (variant, replica) job, so a whole parameter sweep parallelises as
// one flat job set with no per-variant barrier. Each variant's
// replicas draw from that variant spec's seed exactly as RunEnsemble's
// do, and each variant merges on the shared TimeGrid; results are
// bit-identical for every workers value. The first failure anywhere
// cancels every remaining job, and the returned error is that
// failure, not an induced cancellation.
func RunSweep(ctx context.Context, specs []*SessionSpec, replicas, workers int, until, every float64, opts ...EnsembleOption) ([]*Ensemble, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("parsurf: sweep needs at least one spec")
	}
	for v, spec := range specs {
		if spec == nil {
			return nil, fmt.Errorf("parsurf: sweep variant %d is a nil spec", v)
		}
	}
	if replicas < 1 {
		return nil, fmt.Errorf("parsurf: ensemble needs at least one replica, got %d", replicas)
	}
	if until <= 0 || every <= 0 {
		return nil, fmt.Errorf("parsurf: ensemble needs positive until and every, got %v and %v", until, every)
	}
	var cfg ensembleConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	grid, err := ensemble.NewTimeGrid(until, every)
	if err != nil {
		return nil, fmt.Errorf("parsurf: %w", err)
	}

	out := make([]*Ensemble, len(specs))
	accs := make([]*ensemble.Accumulator, len(specs))
	for v, spec := range specs {
		out[v] = &Ensemble{Grid: grid}
		if cfg.keep {
			out[v].Replicas = make([]*Replica, replicas)
		}
		// The reorder window bounds the streaming buffer at roughly the
		// worker count even when one early replica far outlives its
		// siblings.
		accs[v] = ensemble.NewAccumulator(spec.NumSpecies(), grid.Len(), workers)
	}
	times := grid.Times() // one shared copy: Mean/Std/replica series all point at it
	err = ensemble.Run(ctx, len(specs)*replicas, workers, func(ctx context.Context, job int) error {
		v, i := job/replicas, job%replicas
		rep, values, err := runReplica(ctx, specs[v], v, i, grid, times, &cfg)
		if err == nil {
			err = accs[v].Add(ctx, i, values)
		}
		if err != nil {
			if len(specs) > 1 {
				return fmt.Errorf("parsurf: sweep variant %d replica %d: %w", v, i, err)
			}
			return fmt.Errorf("parsurf: replica %d: %w", i, err)
		}
		if cfg.keep {
			out[v].Replicas[i] = rep
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for v := range out {
		mean, std := accs[v].MeanStd()
		out[v].Mean = seriesOnGrid(times, mean)
		out[v].Std = seriesOnGrid(times, std)
	}
	return out, nil
}

// seriesOnGrid wraps per-species sample rows and their shared grid
// times as Series values.
func seriesOnGrid(times []float64, rows [][]float64) []*Series {
	out := make([]*Series, len(rows))
	for i, row := range rows {
		out[i] = &Series{T: times, X: row}
	}
	return out
}

// runReplica builds and runs ensemble member i of variant spec,
// sampling per-species coverages at every grid point.
func runReplica(ctx context.Context, spec *SessionSpec, variant, i int, grid TimeGrid, times []float64, cfg *ensembleConfig) (*Replica, [][]float64, error) {
	sess, err := spec.build(rng.New(spec.seed).Split(replicaStreamID(i)))
	if err != nil {
		return nil, nil, err
	}
	numSpecies := sess.NumSpecies()
	n := float64(sess.Lattice().N())
	values := make([][]float64, numSpecies)
	for sp := range values {
		values[sp] = make([]float64, grid.Len())
	}
	steps, err := sim.RunGrid(ctx, sess.Engine(), grid, func(k int, c *Config) {
		counts := c.CountAll(numSpecies)
		for sp := range values {
			values[sp][k] = float64(counts[sp]) / n
		}
		for _, obs := range cfg.observers {
			obs(variant, i, grid.At(k), sess)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if !cfg.keep {
		return nil, values, nil
	}
	rep := &Replica{
		Session:  sess,
		Coverage: seriesOnGrid(times, values),
		Stats:    RunStats{Steps: steps, Samples: grid.Len(), Time: sess.Engine().Time()},
	}
	return rep, values, nil
}
