package parsurf

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"parsurf/internal/persist"
	"parsurf/internal/rng"
)

// Hash fingerprints the spec: the hex SHA-256 of its canonical JSON
// form. It returns "" for specs that cannot be serialized (raw
// partitions or type splits supplied as Go pointers) — such specs still
// checkpoint, but without the spec-mismatch guard.
func (sp *SessionSpec) Hash() string {
	data, err := sp.MarshalJSON()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Checkpoint writes the session's complete state — engine name, spec
// hash, step count, clock, random-source state, configuration and the
// engine-private payload — in the persist v2 format. Taken at a step
// boundary (which is the only place callers can observe a session), the
// snapshot is exact: every engine routes its randomness so the raw
// source state is in sync after each whole Step (the RSM batch reader
// guarantees this through its reservation bound), so a ResumeSession
// continues the trajectory bit for bit.
func (s *Session) Checkpoint(w io.Writer) error {
	var payload bytes.Buffer
	if err := s.eng.SaveState(&payload); err != nil {
		return fmt.Errorf("parsurf: saving %s engine state: %w", s.eng.Name(), err)
	}
	return persist.Write(w, &persist.Checkpoint{
		Engine:     s.eng.Name(),
		SpecHash:   s.spec.Hash(),
		NumSpecies: s.NumSpecies(),
		Steps:      s.eng.Steps(),
		Time:       s.eng.Time(),
		Config:     s.cfg,
		RNG:        s.src,
		Payload:    payload.Bytes(),
	})
}

// ResumeSession builds a session from the spec and restores the
// checkpointed state into it, so the next Step continues the
// interrupted run exactly where Checkpoint left it. The checkpoint must
// come from the same spec: engine name, lattice extents, species count
// and (when both sides are serializable) the spec hash are all checked.
func ResumeSession(spec *SessionSpec, r io.Reader) (*Session, error) {
	cp, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	return resumeSession(spec, cp)
}

// resumeSession restores a decoded checkpoint into a fresh session
// built from sp. The order matters: the checkpointed cells are copied
// into the configuration first, Reset then re-derives every
// cells-dependent structure from them, LoadState overwrites the
// history-dependent remainder, and the raw source state is restored
// last, in place (the engine holds the session's source pointer), so
// nothing later in the sequence can advance it.
func resumeSession(sp *SessionSpec, cp *persist.Checkpoint) (*Session, error) {
	if cp.Engine != "" && cp.Engine != sp.engine {
		return nil, fmt.Errorf("parsurf: checkpoint is from engine %q, spec builds %q", cp.Engine, sp.engine)
	}
	if h := sp.Hash(); h != "" && cp.SpecHash != "" && h != cp.SpecHash {
		return nil, fmt.Errorf("parsurf: checkpoint spec hash %s.. does not match this spec (%s..)", cp.SpecHash[:min(8, len(cp.SpecHash))], h[:8])
	}
	lat := cp.Config.Lattice()
	if lat.L0 != sp.l0 || lat.L1 != sp.l1 {
		return nil, fmt.Errorf("parsurf: checkpoint lattice %dx%d, spec has %dx%d", lat.L0, lat.L1, sp.l0, sp.l1)
	}
	if cp.NumSpecies != sp.NumSpecies() {
		return nil, fmt.Errorf("parsurf: checkpoint has %d species, spec's model has %d", cp.NumSpecies, sp.NumSpecies())
	}
	s, err := sp.build(rng.New(sp.seed))
	if err != nil {
		return nil, err
	}
	s.cfg.CopyFrom(cp.Config)
	s.eng.Reset(s.cfg, s.src)
	pr := bytes.NewReader(cp.Payload)
	if err := s.eng.LoadState(pr); err != nil {
		return nil, fmt.Errorf("parsurf: restoring %s engine state: %w", sp.engine, err)
	}
	if pr.Len() != 0 {
		return nil, fmt.Errorf("parsurf: %d trailing bytes in %s engine payload", pr.Len(), sp.engine)
	}
	s.src.Restore(cp.RNG.State())
	return s, nil
}
