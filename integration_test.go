package parsurf_test

import (
	"math"
	"testing"

	"parsurf"
	"parsurf/internal/ca"
	"parsurf/internal/dmc"
	"parsurf/internal/lattice"
	"parsurf/internal/model"
	"parsurf/internal/rng"
	"parsurf/internal/stats"
)

// stepMSD measures the mean-squared displacement per MC step of a lone
// particle on a ring (unwrapped across the periodic boundary).
func stepMSD(t *testing.T, cm *model.Compiled, lat *lattice.Lattice,
	mk func(cfg *lattice.Config, src *rng.Source) dmc.Simulator, seed uint64) (msd, drift float64) {
	t.Helper()
	var sumSq, sum float64
	const reps = 150
	const steps = 20
	for rep := 0; rep < reps; rep++ {
		cfg := lattice.NewConfig(lat)
		start := 32
		cfg.Set(start, 1)
		sim := mk(cfg, rng.New(seed+uint64(rep)))
		pos := start
		for step := 0; step < steps; step++ {
			sim.Step()
			next := -1
			for s := 0; s < lat.N(); s++ {
				if cfg.Get(s) == 1 {
					next = s
					break
				}
			}
			d := next - pos
			if d > lat.N()/2 {
				d -= lat.N()
			}
			if d < -lat.N()/2 {
				d += lat.N()
			}
			sumSq += float64(d * d)
			sum += float64(d)
			pos = next
		}
	}
	return sumSq / (reps * steps), sum / (reps * steps)
}

// The paper (§4, citing Vichniac) notes that NDCA gives degenerate
// results for some systems, e.g. single-file models, because every site
// is visited exactly once per step in a fixed order. This test makes
// the bias measurable: under a raster sweep a rightward hop carries the
// particle onto the not-yet-visited neighbour site, which is trialled
// again in the same step, so hops compound in the sweep direction. The
// mean displacement stays zero, but the diffusion constant (per-step
// MSD) roughly doubles relative to exact DMC.
func TestIntegrationNDCASweepInflatesDiffusion(t *testing.T) {
	m := model.NewSingleFile(1)
	lat := lattice.New(64, 1)
	cm, err := model.Compile(m, lat)
	if err != nil {
		t.Fatal(err)
	}

	ndcaMSD, ndcaDrift := stepMSD(t, cm, lat, func(cfg *lattice.Config, src *rng.Source) dmc.Simulator {
		return ca.NewNDCA(cm, cfg, src)
	}, 100)
	rsmMSD, rsmDrift := stepMSD(t, cm, lat, func(cfg *lattice.Config, src *rng.Source) dmc.Simulator {
		return dmc.NewRSM(cm, cfg, src)
	}, 200)

	if math.Abs(rsmDrift) > 0.15 || math.Abs(ndcaDrift) > 0.15 {
		t.Fatalf("unexpected mean drift: RSM %v, NDCA %v", rsmDrift, ndcaDrift)
	}
	if ndcaMSD < 1.5*rsmMSD {
		t.Fatalf("raster NDCA MSD/step %v not inflated over RSM %v", ndcaMSD, rsmMSD)
	}
}

// Randomising the sweep order each step (§5's "additional
// randomization") halves the compounding: the MSD moves toward the DMC
// value. It does not remove it entirely — a random order still visits
// the particle's new site later in the same step half the time — so we
// only require a clear reduction from the raster value.
func TestIntegrationNDCARandomOrderReducesBias(t *testing.T) {
	m := model.NewSingleFile(1)
	lat := lattice.New(64, 1)
	cm := model.MustCompile(m, lat)
	rasterMSD, _ := stepMSD(t, cm, lat, func(cfg *lattice.Config, src *rng.Source) dmc.Simulator {
		return ca.NewNDCA(cm, cfg, src)
	}, 300)
	randMSD, drift := stepMSD(t, cm, lat, func(cfg *lattice.Config, src *rng.Source) dmc.Simulator {
		a := ca.NewNDCA(cm, cfg, src)
		a.RandomOrder = true
		return a
	}, 400)
	if math.Abs(drift) > 0.15 {
		t.Fatalf("random-order NDCA drifts: %v", drift)
	}
	if randMSD >= rasterMSD {
		t.Fatalf("random order did not reduce the sweep bias: %v vs raster %v", randMSD, rasterMSD)
	}
}

// Headline integration: the Pt(100) model oscillates under exact DMC
// with the period recorded in EXPERIMENTS.md.
func TestIntegrationPtCOOscillates(t *testing.T) {
	if testing.Short() {
		t.Skip("oscillation run is slow")
	}
	lat := parsurf.NewSquareLattice(50)
	cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
	cfg := parsurf.NewConfig(lat)
	simr := parsurf.NewVSSM(cm, cfg, parsurf.NewRNG(11))
	co := &stats.Series{}
	parsurf.Sample(simr, 0.25, 120, func(tm float64) {
		c, _, _ := parsurf.PtCoverages(cfg)
		co.Append(tm, c)
	})
	oscn, ok := stats.DetectOscillation(co.Window(30, 120), 600, 0.3)
	if !ok {
		t.Fatal("no oscillation under exact DMC")
	}
	if oscn.Period < 8 || oscn.Period > 22 {
		t.Fatalf("period %v outside the recorded 14±(finite-size) band", oscn.Period)
	}
	if oscn.Amplitude < 0.1 {
		t.Fatalf("amplitude %v too small", oscn.Amplitude)
	}
	// Spectral cross-check: the periodogram finds the same period.
	p, _, ok := stats.DominantPeriod(co.Window(30, 120), 512)
	if ok && (p < oscn.Period/2 || p > oscn.Period*2) {
		t.Fatalf("periodogram period %v disagrees with autocorrelation %v", p, oscn.Period)
	}
}

// The L-PNDCA accuracy ordering of Fig. 9 at integration scale: with a
// shared reference, small L deviates less than large L, on average over
// seeds. Uses the deterministic-time variant to remove clock noise.
func TestIntegrationLPNDCAAccuracyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy comparison is slow")
	}
	lat := parsurf.NewSquareLattice(50)
	cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
	part, err := parsurf.VonNeumann5(lat)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mk func(cfg *parsurf.Config, seed uint64) parsurf.Simulator, seed uint64) *stats.Series {
		cfg := parsurf.NewConfig(lat)
		s := mk(cfg, seed)
		out := &stats.Series{}
		parsurf.Sample(s, 0.25, 60, func(tm float64) {
			c, _, _ := parsurf.PtCoverages(cfg)
			out.Append(tm, c)
		})
		return out
	}
	var rmsd1, rmsd500 float64
	const seeds = 3
	for seed := uint64(0); seed < seeds; seed++ {
		ref := run(func(cfg *parsurf.Config, s uint64) parsurf.Simulator {
			return parsurf.NewRSM(cm, cfg, parsurf.NewRNG(400+s))
		}, seed)
		l1 := run(func(cfg *parsurf.Config, s uint64) parsurf.Simulator {
			return parsurf.NewLPNDCA(cm, cfg, parsurf.NewRNG(400+s), part, 1)
		}, seed)
		l500 := run(func(cfg *parsurf.Config, s uint64) parsurf.Simulator {
			e := parsurf.NewLPNDCA(cm, cfg, parsurf.NewRNG(400+s), part, 500)
			e.Strategy = parsurf.RandomReplacement
			return e
		}, seed)
		rmsd1 += stats.RMSD(ref, l1, 15, 60, 300)
		rmsd500 += stats.RMSD(ref, l500, 15, 60, 300)
	}
	// Averaged over seeds the large-L bias must not be smaller than the
	// small-L one (allow equality noise with a small margin).
	if rmsd500 < rmsd1*0.9 {
		t.Fatalf("L=500 mean RMSD %.3f below L=1 %.3f", rmsd500/seeds, rmsd1/seeds)
	}
}

// Engine cross-validation on the oscillating model: RSM and VSSM agree
// on the oscillation period (they sample the same Master Equation).
func TestIntegrationRSMVSSMSameOscillation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation is slow")
	}
	lat := parsurf.NewSquareLattice(50)
	cm := parsurf.MustCompile(parsurf.NewPtCOModel(parsurf.DefaultPtCORates()), lat)
	period := func(mk func(cfg *parsurf.Config) parsurf.Simulator) float64 {
		cfg := parsurf.NewConfig(lat)
		s := mk(cfg)
		co := &stats.Series{}
		parsurf.Sample(s, 0.25, 120, func(tm float64) {
			c, _, _ := parsurf.PtCoverages(cfg)
			co.Append(tm, c)
		})
		o, ok := stats.DetectOscillation(co.Window(30, 120), 600, 0.25)
		if !ok {
			t.Fatal("oscillation missing")
		}
		return o.Period
	}
	pRSM := period(func(cfg *parsurf.Config) parsurf.Simulator {
		return parsurf.NewRSM(cm, cfg, parsurf.NewRNG(21))
	})
	pVSSM := period(func(cfg *parsurf.Config) parsurf.Simulator {
		return parsurf.NewVSSM(cm, cfg, parsurf.NewRNG(22))
	})
	if math.Abs(pRSM-pVSSM) > 0.35*pRSM {
		t.Fatalf("period disagreement: RSM %v vs VSSM %v", pRSM, pVSSM)
	}
}
