package parsurf_test

import (
	"context"
	"testing"

	"parsurf"
)

// The acceptance benchmark of the ensemble runner: 16 ZGB replicas at
// 64×64 for 50 MCS. Replicas are embarrassingly parallel, so 4 workers
// should cut wall clock by well over 2.5× on a 4-core machine:
//
//	go test -bench BenchmarkEnsembleZGB -benchtime 3x
func benchmarkEnsemble(b *testing.B, workers int) {
	spec, err := parsurf.NewSpec(
		parsurf.WithLattice(64, 64),
		parsurf.WithEngine("ziff", parsurf.COFraction(0.51)),
		parsurf.WithSeed(42),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parsurf.RunEnsemble(context.Background(), spec, 16, workers, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsembleZGB16Replicas1Worker(b *testing.B)  { benchmarkEnsemble(b, 1) }
func BenchmarkEnsembleZGB16Replicas4Workers(b *testing.B) { benchmarkEnsemble(b, 4) }
